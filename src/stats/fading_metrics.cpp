#include "rfade/stats/fading_metrics.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::stats {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}

FadingMetrics measure_fading_metrics(const numeric::RVector& envelope,
                                     double threshold,
                                     double sample_rate_hz) {
  RFADE_EXPECTS(envelope.size() >= 2, "fading metrics: need >= 2 samples");
  RFADE_EXPECTS(sample_rate_hz > 0.0, "fading metrics: sample rate must be > 0");
  RFADE_EXPECTS(threshold > 0.0, "fading metrics: threshold must be > 0");

  std::size_t crossings = 0;
  std::size_t samples_below = 0;
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    if (envelope[i] < threshold) {
      ++samples_below;
    }
    if (i > 0 && envelope[i - 1] < threshold && envelope[i] >= threshold) {
      ++crossings;
    }
  }

  const double duration =
      static_cast<double>(envelope.size()) / sample_rate_hz;
  FadingMetrics metrics;
  metrics.crossings = crossings;
  metrics.level_crossing_rate = static_cast<double>(crossings) / duration;
  metrics.average_fade_duration =
      crossings == 0 ? 0.0
                     : static_cast<double>(samples_below) /
                           (sample_rate_hz * static_cast<double>(crossings));
  return metrics;
}

double theoretical_lcr(double rho, double max_doppler_hz) {
  RFADE_EXPECTS(rho > 0.0, "theoretical_lcr: rho must be positive");
  RFADE_EXPECTS(max_doppler_hz > 0.0, "theoretical_lcr: f_D must be positive");
  return std::sqrt(2.0 * kPi) * max_doppler_hz * rho * std::exp(-rho * rho);
}

double theoretical_afd(double rho, double max_doppler_hz) {
  RFADE_EXPECTS(rho > 0.0, "theoretical_afd: rho must be positive");
  RFADE_EXPECTS(max_doppler_hz > 0.0, "theoretical_afd: f_D must be positive");
  return (std::exp(rho * rho) - 1.0) /
         (rho * max_doppler_hz * std::sqrt(2.0 * kPi));
}

double rms(const numeric::RVector& envelope) {
  RFADE_EXPECTS(!envelope.empty(), "rms: empty envelope");
  double sum = 0.0;
  for (const double r : envelope) {
    sum += r * r;
  }
  return std::sqrt(sum / static_cast<double>(envelope.size()));
}

}  // namespace rfade::stats
