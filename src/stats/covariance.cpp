#include "rfade/stats/covariance.hpp"

#include <cmath>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::stats {

CovarianceAccumulator::CovarianceAccumulator(std::size_t dimension)
    : dim_(dimension),
      outer_sum_(dimension, dimension, numeric::cdouble{}),
      vector_sum_(dimension, numeric::cdouble{}) {
  RFADE_EXPECTS(dimension > 0, "CovarianceAccumulator: dimension must be > 0");
}

void CovarianceAccumulator::add(std::span<const numeric::cdouble> z) {
  RFADE_EXPECTS(z.size() == dim_, "CovarianceAccumulator: length mismatch");
  for (std::size_t i = 0; i < dim_; ++i) {
    vector_sum_[i] += z[i];
    for (std::size_t j = 0; j <= i; ++j) {
      outer_sum_(i, j) += z[i] * std::conj(z[j]);
    }
  }
  ++count_;
}

void CovarianceAccumulator::merge(const CovarianceAccumulator& other) {
  RFADE_EXPECTS(other.dim_ == dim_, "CovarianceAccumulator: dim mismatch");
  for (std::size_t i = 0; i < dim_; ++i) {
    vector_sum_[i] += other.vector_sum_[i];
    for (std::size_t j = 0; j <= i; ++j) {
      outer_sum_(i, j) += other.outer_sum_(i, j);
    }
  }
  count_ += other.count_;
}

numeric::CMatrix CovarianceAccumulator::covariance() const {
  RFADE_EXPECTS(count_ > 0, "CovarianceAccumulator: no samples");
  numeric::CMatrix k(dim_, dim_);
  const double inv_n = 1.0 / static_cast<double>(count_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      k(i, j) = outer_sum_(i, j) * inv_n;
      k(j, i) = std::conj(k(i, j));
    }
  }
  return k;
}

numeric::CMatrix CovarianceAccumulator::covariance_centered() const {
  numeric::CMatrix k = covariance();
  const numeric::CVector mu = mean();
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      k(i, j) -= mu[i] * std::conj(mu[j]);
    }
  }
  return k;
}

numeric::CVector CovarianceAccumulator::mean() const {
  RFADE_EXPECTS(count_ > 0, "CovarianceAccumulator: no samples");
  numeric::CVector mu(dim_);
  const double inv_n = 1.0 / static_cast<double>(count_);
  for (std::size_t i = 0; i < dim_; ++i) {
    mu[i] = vector_sum_[i] * inv_n;
  }
  return mu;
}

double relative_frobenius_error(const numeric::CMatrix& a,
                                const numeric::CMatrix& b) {
  const double denom = std::max(numeric::frobenius_norm(b), 1e-300);
  return numeric::frobenius_norm(numeric::subtract(a, b)) / denom;
}

}  // namespace rfade::stats
