#include "rfade/stats/ks_test.hpp"

#include <algorithm>
#include <cmath>

#include "rfade/special/kolmogorov.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::stats {

KsResult ks_test(numeric::RVector samples,
                 const std::function<double(double)>& cdf) {
  RFADE_EXPECTS(!samples.empty(), "ks_test: empty sample");
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double ecdf_before = static_cast<double>(i) / n;
    const double ecdf_after = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - ecdf_before), std::abs(ecdf_after - f)));
  }
  KsResult result;
  result.statistic = d;
  result.p_value = special::kolmogorov_p_value(d, n);
  result.n = samples.size();
  return result;
}

double ks_two_sample_statistic(numeric::RVector a, numeric::RVector b) {
  RFADE_EXPECTS(!a.empty() && !b.empty(), "ks_two_sample: empty sample");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] <= b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
    const double fa = static_cast<double>(ia) / static_cast<double>(a.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

}  // namespace rfade::stats
