#include "rfade/stats/mutual_information.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"

namespace rfade::stats {

namespace {

constexpr double kEulerGamma = 0.57721566490153286060651209;
constexpr double kLog2E = 1.4426950408889634073599247;  // log2(e)

/// Composite Simpson over [0, kCutoff] of f(x) e^{-x}; every integrand
/// we meet (ln^2(1+sx), (sx/(1+sx))^n) is smooth and at most
/// polylogarithmic, so the e^{-60} tail and the h^4 Simpson error are
/// both far below the 1e-10 the validation tolerances need.
constexpr double kCutoff = 60.0;
constexpr std::size_t kPanels = 1 << 14;  // must be even

template <typename F>
double exponential_expectation(F&& f) {
  const double h = kCutoff / static_cast<double>(kPanels);
  double sum = f(0.0) + f(kCutoff) * std::exp(-kCutoff);
  for (std::size_t i = 1; i < kPanels; ++i) {
    const double x = h * static_cast<double>(i);
    const double w = (i % 2 == 1) ? 4.0 : 2.0;
    sum += w * f(x) * std::exp(-x);
  }
  return sum * h / 3.0;
}

}  // namespace

double expint_e1(double x) {
  if (!(x > 0.0) || !std::isfinite(x)) {
    throw ValueError("expint_e1: argument must be finite and > 0 (got " +
                     std::to_string(x) + ")");
  }
  if (x <= 1.0) {
    // E1(x) = -gamma - ln x + sum_{k>=1} (-1)^{k+1} x^k / (k k!)
    double sum = 0.0;
    double term = 1.0;  // x^k / k!
    for (int k = 1; k <= 40; ++k) {
      term *= x / static_cast<double>(k);
      const double contribution = term / static_cast<double>(k);
      sum += (k % 2 == 1) ? contribution : -contribution;
      if (contribution < 1e-18 * (std::abs(sum) + 1.0)) break;
    }
    return -kEulerGamma - std::log(x) + sum;
  }
  // Continued fraction E1(x) = e^{-x} / (x + 1 - 1/(x + 3 - 4/(...)))
  // evaluated with the modified Lentz algorithm.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 200; ++i) {
    const double a = -static_cast<double>(i) * static_cast<double>(i);
    b += 2.0;
    d = b + a * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + a / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = c * d;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) {
      return h * std::exp(-x);
    }
  }
  throw ConvergenceError("expint_e1: continued fraction failed to converge");
}

double mi_mean(double snr_linear) {
  RFADE_EXPECTS(snr_linear > 0.0 && std::isfinite(snr_linear),
                "mi_mean: snr must be finite and > 0");
  const double inv = 1.0 / snr_linear;
  return kLog2E * std::exp(inv) * expint_e1(inv);
}

double mi_variance(double snr_linear) {
  RFADE_EXPECTS(snr_linear > 0.0 && std::isfinite(snr_linear),
                "mi_variance: snr must be finite and > 0");
  const double second = exponential_expectation([snr_linear](double x) {
    const double l = std::log1p(snr_linear * x);
    return l * l;
  });
  const double mean_nats = mi_mean(snr_linear) / kLog2E;
  return kLog2E * kLog2E * (second - mean_nats * mean_nats);
}

std::vector<double> mi_laguerre_coefficients(double snr_linear,
                                             std::size_t terms) {
  RFADE_EXPECTS(snr_linear > 0.0 && std::isfinite(snr_linear),
                "mi_laguerre_coefficients: snr must be finite and > 0");
  RFADE_EXPECTS(terms >= 1, "mi_laguerre_coefficients: terms must be >= 1");
  // One quadrature sweep computes every E[t^n], t = sx/(1+sx) in [0, 1):
  // at each node accumulate the running power of t into all n slots.
  std::vector<double> moments(terms, 0.0);
  const double h = kCutoff / static_cast<double>(kPanels);
  for (std::size_t i = 0; i <= kPanels; ++i) {
    const double x = h * static_cast<double>(i);
    double w = (i == 0 || i == kPanels) ? 1.0 : ((i % 2 == 1) ? 4.0 : 2.0);
    w *= std::exp(-x);
    const double t = snr_linear * x / (1.0 + snr_linear * x);
    double power = 1.0;
    for (std::size_t n = 0; n < terms; ++n) {
      power *= t;
      moments[n] += w * power;
    }
  }
  std::vector<double> a(terms);
  for (std::size_t n = 0; n < terms; ++n) {
    a[n] = -moments[n] * h / 3.0 / static_cast<double>(n + 1);
  }
  return a;
}

double mi_autocovariance(double snr_linear, double field_correlation) {
  RFADE_EXPECTS(std::abs(field_correlation) <= 1.0 + 1e-12,
                "mi_autocovariance: |field correlation| must be <= 1");
  const double rho_p =
      std::min(1.0, field_correlation * field_correlation);
  if (rho_p == 0.0) return 0.0;
  if (rho_p == 1.0) return mi_variance(snr_linear);
  // Terms decay like rho_p^n / n^2 (|a_n| <= 1/n); 512 terms leave a
  // geometric tail below 1e-12 * variance for rho_p <= 0.999.
  static constexpr std::size_t kTerms = 512;
  const std::vector<double> a = mi_laguerre_coefficients(snr_linear, kTerms);
  double sum = 0.0;
  double rho_pow = 1.0;
  for (std::size_t n = 0; n < kTerms; ++n) {
    rho_pow *= rho_p;
    sum += rho_pow * a[n] * a[n];
    if (rho_pow < 1e-15) break;
  }
  return kLog2E * kLog2E * sum;
}

}  // namespace rfade::stats
