#include "rfade/stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  RFADE_EXPECTS(hi > lo, "Histogram: hi must exceed lo");
  RFADE_EXPECTS(bins >= 1, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  const double offset = (x - lo_) / width_;
  const auto last = static_cast<double>(counts_.size() - 1);
  const double clamped = std::clamp(std::floor(offset), 0.0, last);
  ++counts_[static_cast<std::size_t>(clamped)];
  ++total_;
}

void Histogram::add_all(const numeric::RVector& xs) {
  for (const double x : xs) {
    add(x);
  }
}

std::size_t Histogram::count(std::size_t bin) const {
  RFADE_EXPECTS(bin < counts_.size(), "Histogram: bin out of range");
  return counts_[bin];
}

double Histogram::center(std::size_t bin) const {
  RFADE_EXPECTS(bin < counts_.size(), "Histogram: bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  RFADE_EXPECTS(bin < counts_.size(), "Histogram: bin out of range");
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * width_);
}

}  // namespace rfade::stats
