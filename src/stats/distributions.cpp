#include "rfade/stats/distributions.hpp"

#include <cmath>
#include <functional>

#include "rfade/special/bessel_i.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::stats {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

double adaptive_simpson_step(const std::function<double(double)>& f, double a,
                             double b, double fa, double fm, double fb,
                             double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_step(f, a, m, fa, flm, fm, left, 0.5 * tol,
                               depth - 1) +
         adaptive_simpson_step(f, m, b, fm, frm, fb, right, 0.5 * tol,
                               depth - 1);
}

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol) {
  const double fa = f(a);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return adaptive_simpson_step(f, a, b, fa, fm, fb, whole, tol, 28);
}

}  // namespace

RayleighDistribution::RayleighDistribution(double sigma) : sigma_(sigma) {
  RFADE_EXPECTS(sigma > 0.0, "RayleighDistribution: sigma must be positive");
}

RayleighDistribution RayleighDistribution::from_gaussian_power(
    double sigma_g_squared) {
  RFADE_EXPECTS(sigma_g_squared > 0.0,
                "RayleighDistribution: power must be positive");
  return RayleighDistribution(std::sqrt(0.5 * sigma_g_squared));
}

double RayleighDistribution::pdf(double r) const {
  if (r < 0.0) {
    return 0.0;
  }
  const double s2 = sigma_ * sigma_;
  return r / s2 * std::exp(-0.5 * r * r / s2);
}

double RayleighDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::exp(-0.5 * r * r / (sigma_ * sigma_));
}

double RayleighDistribution::quantile(double p) const {
  RFADE_EXPECTS(p >= 0.0 && p < 1.0, "Rayleigh quantile: p must be in [0,1)");
  return sigma_ * std::sqrt(-2.0 * std::log(1.0 - p));
}

double RayleighDistribution::mean() const {
  return sigma_ * std::sqrt(0.5 * kPi);
}

double RayleighDistribution::variance() const {
  return (2.0 - 0.5 * kPi) * sigma_ * sigma_;
}

RicianDistribution::RicianDistribution(double nu, double sigma)
    : nu_(nu), sigma_(sigma) {
  RFADE_EXPECTS(nu >= 0.0, "RicianDistribution: nu must be non-negative");
  RFADE_EXPECTS(sigma > 0.0, "RicianDistribution: sigma must be positive");
}

RicianDistribution RicianDistribution::from_k_factor(
    double k_factor, double diffuse_gaussian_power) {
  RFADE_EXPECTS(k_factor >= 0.0,
                "RicianDistribution: K-factor must be non-negative");
  RFADE_EXPECTS(diffuse_gaussian_power > 0.0,
                "RicianDistribution: diffuse power must be positive");
  return RicianDistribution(std::sqrt(k_factor * diffuse_gaussian_power),
                            std::sqrt(0.5 * diffuse_gaussian_power));
}

double RicianDistribution::k_factor() const {
  return 0.5 * nu_ * nu_ / (sigma_ * sigma_);
}

double RicianDistribution::pdf(double r) const {
  if (r < 0.0) {
    return 0.0;
  }
  const double s2 = sigma_ * sigma_;
  // (r/s2) exp(-(r^2+nu^2)/(2 s2)) I0(r nu / s2), written through the
  // scaled I0 so the Bessel growth cancels the exponential decay exactly:
  // exp(-(r - nu)^2 / (2 s2)) i0e(r nu / s2).
  const double d = r - nu_;
  return r / s2 * std::exp(-0.5 * d * d / s2) *
         special::bessel_i0e(r * nu_ / s2);
}

double RicianDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  // Essentially all mass lies within nu +- 10 sigma (the tails beyond are
  // < e^{-50}, i.e. 0 and 1 to double precision).  Integrating only over
  // that band keeps the domain at most 20 sigma wide, so the adaptive
  // stencil always lands inside the bulk — integrating from 0 for large K
  // would let every initial stencil point miss a narrow peak and
  // terminate at ~0 for a probability that is actually 1.
  const double lo = std::max(0.0, nu_ - 10.0 * sigma_);
  const double hi = nu_ + 10.0 * sigma_;
  if (r >= hi) {
    return 1.0;
  }
  if (r <= lo) {
    return 0.0;
  }
  const double integral = adaptive_simpson(
      [this](double t) { return pdf(t); }, lo, r, 1e-12);
  return std::min(1.0, std::max(0.0, integral));
}

double RicianDistribution::mean() const {
  // sigma sqrt(pi/2) L_{1/2}(-K), with the Laguerre polynomial expanded in
  // the exponentially-scaled Bessel functions:
  //   L_{1/2}(-K) = e^{-K/2} [(1 + K) I0(K/2) + K I1(K/2)]
  //              = (1 + K) i0e(K/2) + K i1e(K/2).
  const double k = k_factor();
  const double laguerre = (1.0 + k) * special::bessel_i0e(0.5 * k) +
                          k * special::bessel_i1e(0.5 * k);
  return sigma_ * std::sqrt(0.5 * kPi) * laguerre;
}

double RicianDistribution::second_moment() const {
  return 2.0 * sigma_ * sigma_ + nu_ * nu_;
}

double RicianDistribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_cdf(double x, double mean, double stddev) {
  RFADE_EXPECTS(stddev > 0.0, "normal_cdf: stddev must be positive");
  return normal_cdf((x - mean) / stddev);
}

double exponential_cdf(double x, double rate) {
  RFADE_EXPECTS(rate > 0.0, "exponential_cdf: rate must be positive");
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * x);
}

}  // namespace rfade::stats
