#include "rfade/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "rfade/special/bessel_i.hpp"
#include "rfade/special/bessel_k.hpp"
#include "rfade/special/gamma.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::stats {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

double adaptive_simpson_step(const std::function<double(double)>& f, double a,
                             double b, double fa, double fm, double fb,
                             double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_step(f, a, m, fa, flm, fm, left, 0.5 * tol,
                               depth - 1) +
         adaptive_simpson_step(f, m, b, fm, frm, fb, right, 0.5 * tol,
                               depth - 1);
}

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol) {
  const double fa = f(a);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return adaptive_simpson_step(f, a, b, fa, fm, fb, whole, tol, 28);
}

}  // namespace

RayleighDistribution::RayleighDistribution(double sigma) : sigma_(sigma) {
  RFADE_EXPECTS(sigma > 0.0, "RayleighDistribution: sigma must be positive");
}

RayleighDistribution RayleighDistribution::from_gaussian_power(
    double sigma_g_squared) {
  RFADE_EXPECTS(sigma_g_squared > 0.0,
                "RayleighDistribution: power must be positive");
  return RayleighDistribution(std::sqrt(0.5 * sigma_g_squared));
}

double RayleighDistribution::pdf(double r) const {
  if (r < 0.0) {
    return 0.0;
  }
  const double s2 = sigma_ * sigma_;
  return r / s2 * std::exp(-0.5 * r * r / s2);
}

double RayleighDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::exp(-0.5 * r * r / (sigma_ * sigma_));
}

double RayleighDistribution::quantile(double p) const {
  RFADE_EXPECTS(p >= 0.0 && p < 1.0, "Rayleigh quantile: p must be in [0,1)");
  return sigma_ * std::sqrt(-2.0 * std::log(1.0 - p));
}

double RayleighDistribution::mean() const {
  return sigma_ * std::sqrt(0.5 * kPi);
}

double RayleighDistribution::variance() const {
  return (2.0 - 0.5 * kPi) * sigma_ * sigma_;
}

RicianDistribution::RicianDistribution(double nu, double sigma)
    : nu_(nu), sigma_(sigma) {
  RFADE_EXPECTS(nu >= 0.0, "RicianDistribution: nu must be non-negative");
  RFADE_EXPECTS(sigma > 0.0, "RicianDistribution: sigma must be positive");
}

RicianDistribution RicianDistribution::from_k_factor(
    double k_factor, double diffuse_gaussian_power) {
  RFADE_EXPECTS(k_factor >= 0.0,
                "RicianDistribution: K-factor must be non-negative");
  RFADE_EXPECTS(diffuse_gaussian_power > 0.0,
                "RicianDistribution: diffuse power must be positive");
  return RicianDistribution(std::sqrt(k_factor * diffuse_gaussian_power),
                            std::sqrt(0.5 * diffuse_gaussian_power));
}

double RicianDistribution::k_factor() const {
  return 0.5 * nu_ * nu_ / (sigma_ * sigma_);
}

double RicianDistribution::pdf(double r) const {
  if (r < 0.0) {
    return 0.0;
  }
  const double s2 = sigma_ * sigma_;
  // (r/s2) exp(-(r^2+nu^2)/(2 s2)) I0(r nu / s2), written through the
  // scaled I0 so the Bessel growth cancels the exponential decay exactly:
  // exp(-(r - nu)^2 / (2 s2)) i0e(r nu / s2).
  const double d = r - nu_;
  return r / s2 * std::exp(-0.5 * d * d / s2) *
         special::bessel_i0e(r * nu_ / s2);
}

double RicianDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  // Essentially all mass lies within nu +- 10 sigma (the tails beyond are
  // < e^{-50}, i.e. 0 and 1 to double precision).  Integrating only over
  // that band keeps the domain at most 20 sigma wide, so the adaptive
  // stencil always lands inside the bulk — integrating from 0 for large K
  // would let every initial stencil point miss a narrow peak and
  // terminate at ~0 for a probability that is actually 1.
  const double lo = std::max(0.0, nu_ - 10.0 * sigma_);
  const double hi = nu_ + 10.0 * sigma_;
  if (r >= hi) {
    return 1.0;
  }
  if (r <= lo) {
    return 0.0;
  }
  const double integral = adaptive_simpson(
      [this](double t) { return pdf(t); }, lo, r, 1e-12);
  return std::min(1.0, std::max(0.0, integral));
}

double RicianDistribution::mean() const {
  // sigma sqrt(pi/2) L_{1/2}(-K), with the Laguerre polynomial expanded in
  // the exponentially-scaled Bessel functions:
  //   L_{1/2}(-K) = e^{-K/2} [(1 + K) I0(K/2) + K I1(K/2)]
  //              = (1 + K) i0e(K/2) + K i1e(K/2).
  const double k = k_factor();
  const double laguerre = (1.0 + k) * special::bessel_i0e(0.5 * k) +
                          k * special::bessel_i1e(0.5 * k);
  return sigma_ * std::sqrt(0.5 * kPi) * laguerre;
}

double RicianDistribution::second_moment() const {
  return 2.0 * sigma_ * sigma_ + nu_ * nu_;
}

double RicianDistribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

DoubleRayleighDistribution::DoubleRayleighDistribution(double sigma1,
                                                       double sigma2)
    : sigma1_(sigma1), sigma2_(sigma2) {
  RFADE_EXPECTS(sigma1 > 0.0 && sigma2 > 0.0,
                "DoubleRayleighDistribution: scales must be positive");
}

DoubleRayleighDistribution DoubleRayleighDistribution::from_gaussian_powers(
    double first_power, double second_power) {
  RFADE_EXPECTS(first_power > 0.0 && second_power > 0.0,
                "DoubleRayleighDistribution: stage powers must be positive");
  return DoubleRayleighDistribution(std::sqrt(0.5 * first_power),
                                    std::sqrt(0.5 * second_power));
}

double DoubleRayleighDistribution::pdf(double r) const {
  if (r <= 0.0) {
    // r K_0(r/c) -> 0 as r -> 0 despite the log singularity of K_0.
    return 0.0;
  }
  const double c = scale();
  const double x = r / c;
  // (r/c^2) K_0(r/c) through the scaled Bessel so the far tail underflows
  // gracefully instead of evaluating exp(-x) * overflow-prone pieces.
  return x / c * special::bessel_k0e(x) * std::exp(-x);
}

double DoubleRayleighDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  const double x = r / scale();
  return 1.0 - x * special::bessel_k1e(x) * std::exp(-x);
}

double DoubleRayleighDistribution::mean() const {
  return 0.5 * kPi * scale();
}

double DoubleRayleighDistribution::second_moment() const {
  const double c = scale();
  return 4.0 * c * c;
}

double DoubleRayleighDistribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

TwdpDistribution::TwdpDistribution(double v1, double v2, double sigma)
    : v1_(v1), v2_(v2), sigma_(sigma) {
  RFADE_EXPECTS(v2 >= 0.0 && v1 >= v2,
                "TwdpDistribution: amplitudes must satisfy v1 >= v2 >= 0");
  RFADE_EXPECTS(std::isfinite(v1), "TwdpDistribution: v1 must be finite");
  RFADE_EXPECTS(sigma > 0.0, "TwdpDistribution: sigma must be positive");
  if (v2_ == 0.0) {
    // Exact degeneracy: constant nu(alpha) = v1 — the law *is* Rician
    // (Rayleigh when v1 = 0 too), delegated bit-for-bit.
    conditional_.emplace_back(v1_, sigma_);
    weights_.push_back(1.0);
    return;
  }
  // Phase average over alpha in [0, pi] by the trapezoidal rule: the
  // integrand is analytic and even/periodic in alpha, so the sum
  // converges geometrically.  Its smoothness scale is set by the largest
  // exponent a = v1 v2 r / sigma^2 the conditional Rician laws see over
  // the support, so the panel count grows with that coupling.
  const double s2 = sigma_ * sigma_;
  const double max_coupling = v1_ * v2_ * (v1_ + v2_ + 10.0 * sigma_) / s2;
  const std::size_t panels = std::min<std::size_t>(
      512, 32 + static_cast<std::size_t>(std::ceil(2.0 * max_coupling)));
  conditional_.reserve(panels + 1);
  weights_.reserve(panels + 1);
  for (std::size_t i = 0; i <= panels; ++i) {
    const double alpha = kPi * static_cast<double>(i) /
                         static_cast<double>(panels);
    const double nu = std::sqrt(v1_ * v1_ + v2_ * v2_ +
                                2.0 * v1_ * v2_ * std::cos(alpha));
    conditional_.emplace_back(nu, sigma_);
    const double endpoint = (i == 0 || i == panels) ? 0.5 : 1.0;
    weights_.push_back(endpoint / static_cast<double>(panels));
  }
  // Cumulative CDF grid over the mixture support: every conditional
  // Rician keeps its mass within nu +- 10 sigma, so the mixture lives in
  // [v1 - v2 - 10 sigma, v1 + v2 + 10 sigma].  Composite Simpson per
  // cell; cells are ~1e-2 sigma wide, so the per-cell error is far below
  // the KS resolution the validators need.
  grid_lo_ = std::max(0.0, v1_ - v2_ - 10.0 * sigma_);
  grid_hi_ = v1_ + v2_ + 10.0 * sigma_;
  const std::size_t cells = 2048;
  grid_step_ = (grid_hi_ - grid_lo_) / static_cast<double>(cells);
  cumulative_.resize(cells + 1);
  cumulative_[0] = 0.0;
  double left = pdf(grid_lo_);
  for (std::size_t i = 0; i < cells; ++i) {
    const double a = grid_lo_ + grid_step_ * static_cast<double>(i);
    const double mid = pdf(a + 0.5 * grid_step_);
    const double right = pdf(a + grid_step_);
    cumulative_[i + 1] =
        cumulative_[i] + grid_step_ / 6.0 * (left + 4.0 * mid + right);
    left = right;
  }
}

TwdpDistribution TwdpDistribution::from_parameters(
    double k_factor, double delta, double diffuse_gaussian_power) {
  RFADE_EXPECTS(std::isfinite(k_factor) && k_factor >= 0.0,
                "TwdpDistribution: K-factor must be finite and non-negative");
  RFADE_EXPECTS(std::isfinite(delta) && delta >= 0.0 && delta <= 1.0,
                "TwdpDistribution: Delta must be in [0, 1]");
  RFADE_EXPECTS(diffuse_gaussian_power > 0.0,
                "TwdpDistribution: diffuse power must be positive");
  // v1^2 + v2^2 = K sigma_g^2 and 2 v1 v2 = Delta K sigma_g^2:
  // v_{1,2}^2 = (K sigma_g^2 / 2)(1 +- sqrt(1 - Delta^2)).
  const double specular_power = k_factor * diffuse_gaussian_power;
  const double split = std::sqrt(std::max(0.0, 1.0 - delta * delta));
  const double v1 = std::sqrt(0.5 * specular_power * (1.0 + split));
  const double v2 = std::sqrt(0.5 * specular_power * (1.0 - split));
  return TwdpDistribution(v1, v2, std::sqrt(0.5 * diffuse_gaussian_power));
}

double TwdpDistribution::k_factor() const {
  return 0.5 * (v1_ * v1_ + v2_ * v2_) / (sigma_ * sigma_);
}

double TwdpDistribution::delta() const {
  const double specular = v1_ * v1_ + v2_ * v2_;
  return specular == 0.0 ? 0.0 : 2.0 * v1_ * v2_ / specular;
}

double TwdpDistribution::pdf(double r) const {
  if (r < 0.0) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < conditional_.size(); ++i) {
    sum += weights_[i] * conditional_[i].pdf(r);
  }
  return sum;
}

double TwdpDistribution::cdf(double r) const {
  if (conditional_.size() == 1) {
    return conditional_.front().cdf(r);  // exact Rician degeneracy
  }
  if (r <= grid_lo_ || r <= 0.0) {
    return 0.0;
  }
  if (r >= grid_hi_) {
    return 1.0;
  }
  // Nearest grid value below r plus one Simpson slice over the residual
  // [x_i, r].
  const std::size_t i = std::min(
      cumulative_.size() - 2,
      static_cast<std::size_t>((r - grid_lo_) / grid_step_));
  const double a = grid_lo_ + grid_step_ * static_cast<double>(i);
  const double slice =
      (r - a) / 6.0 * (pdf(a) + 4.0 * pdf(0.5 * (a + r)) + pdf(r));
  return std::min(1.0, std::max(0.0, cumulative_[i] + slice));
}

double TwdpDistribution::mean() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < conditional_.size(); ++i) {
    sum += weights_[i] * conditional_[i].mean();
  }
  return sum;
}

double TwdpDistribution::second_moment() const {
  return 2.0 * sigma_ * sigma_ + v1_ * v1_ + v2_ * v2_;
}

double TwdpDistribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

// --- LognormalDistribution ---------------------------------------------------

LognormalDistribution::LognormalDistribution(double mu_ln, double sigma_ln)
    : mu_(mu_ln), sigma_(sigma_ln) {
  RFADE_EXPECTS(std::isfinite(mu_ln), "LognormalDistribution: mu must be "
                                      "finite");
  RFADE_EXPECTS(std::isfinite(sigma_ln) && sigma_ln > 0.0,
                "LognormalDistribution: sigma must be positive");
}

LognormalDistribution LognormalDistribution::from_db(double mean_db,
                                                     double sigma_db) {
  return LognormalDistribution(mean_db * kDbToNaturalLog,
                               sigma_db * kDbToNaturalLog);
}

double LognormalDistribution::pdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (x * sigma_ * std::sqrt(2.0 * kPi));
}

double LognormalDistribution::cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LognormalDistribution::quantile(double p) const {
  RFADE_EXPECTS(p >= 0.0 && p < 1.0,
                "LognormalDistribution: p must be in [0, 1)");
  if (p == 0.0) {
    return 0.0;
  }
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LognormalDistribution::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LognormalDistribution::second_moment() const {
  return std::exp(2.0 * mu_ + 2.0 * sigma_ * sigma_);
}

double LognormalDistribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

// --- NakagamiDistribution ----------------------------------------------------

NakagamiDistribution::NakagamiDistribution(double m, double omega)
    : m_(m), omega_(omega) {
  RFADE_EXPECTS(std::isfinite(m) && m >= 0.5,
                "NakagamiDistribution: shape m must be >= 1/2");
  RFADE_EXPECTS(std::isfinite(omega) && omega > 0.0,
                "NakagamiDistribution: Omega must be positive");
}

double NakagamiDistribution::pdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  const double log_pdf = std::log(2.0) + m_ * std::log(m_ / omega_) +
                         (2.0 * m_ - 1.0) * std::log(r) -
                         m_ * r * r / omega_ - std::lgamma(m_);
  return std::exp(log_pdf);
}

double NakagamiDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  return special::regularized_gamma_p(m_, m_ * r * r / omega_);
}

double NakagamiDistribution::quantile(double p) const {
  RFADE_EXPECTS(p >= 0.0 && p < 1.0,
                "NakagamiDistribution: p must be in [0, 1)");
  return std::sqrt(omega_ / m_ * special::inverse_regularized_gamma_p(m_, p));
}

double NakagamiDistribution::mean() const {
  return std::exp(std::lgamma(m_ + 0.5) - std::lgamma(m_)) *
         std::sqrt(omega_ / m_);
}

double NakagamiDistribution::second_moment() const { return omega_; }

double NakagamiDistribution::variance() const {
  const double m = mean();
  return omega_ - m * m;
}

// --- WeibullDistribution -----------------------------------------------------

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  RFADE_EXPECTS(std::isfinite(shape) && shape > 0.0,
                "WeibullDistribution: shape must be positive");
  RFADE_EXPECTS(std::isfinite(scale) && scale > 0.0,
                "WeibullDistribution: scale must be positive");
}

double WeibullDistribution::pdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  const double t = std::pow(r / scale_, shape_);
  return shape_ / r * t * std::exp(-t);
}

double WeibullDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  return -std::expm1(-std::pow(r / scale_, shape_));
}

double WeibullDistribution::quantile(double p) const {
  RFADE_EXPECTS(p >= 0.0 && p < 1.0,
                "WeibullDistribution: p must be in [0, 1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double WeibullDistribution::mean() const {
  return scale_ * std::exp(std::lgamma(1.0 + 1.0 / shape_));
}

double WeibullDistribution::second_moment() const {
  return scale_ * scale_ * std::exp(std::lgamma(1.0 + 2.0 / shape_));
}

double WeibullDistribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

// --- SuzukiDistribution ------------------------------------------------------

SuzukiDistribution::SuzukiDistribution(double sigma,
                                       LognormalDistribution shadowing)
    : rayleigh_sigma_(sigma), shadowing_(shadowing) {
  RFADE_EXPECTS(std::isfinite(sigma) && sigma > 0.0,
                "SuzukiDistribution: sigma must be positive");
  // Trapezoid-in-s quadrature of the lognormal mixture: for
  // Gaussian-weighted smooth integrands the trapezoid rule converges
  // like exp(-c / h^2), so step 1/4 over s in [-8, 8] is far below
  // double round-off while keeping cdf() at 65 exponentials per call.
  constexpr double kHalfWidth = 8.0;
  constexpr std::size_t kNodes = 65;
  const double step = 2.0 * kHalfWidth / static_cast<double>(kNodes - 1);
  mixture_gains_.resize(kNodes);
  mixture_weights_.resize(kNodes);
  double total = 0.0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const double s = -kHalfWidth + static_cast<double>(i) * step;
    const double phi = std::exp(-0.5 * s * s);
    const double w = (i == 0 || i + 1 == kNodes) ? 0.5 * phi : phi;
    mixture_gains_[i] = std::exp(shadowing_.mu_ln() +
                                 shadowing_.sigma_ln() * s);
    mixture_weights_[i] = w;
    total += w;
  }
  for (double& w : mixture_weights_) {
    w /= total;  // exact unit mass, so cdf(inf) == 1 to round-off
  }
}

SuzukiDistribution SuzukiDistribution::from_gaussian_power(
    double sigma_g_squared, double mean_db, double sigma_db) {
  RFADE_EXPECTS(sigma_g_squared > 0.0,
                "SuzukiDistribution: gaussian power must be positive");
  return SuzukiDistribution(std::sqrt(0.5 * sigma_g_squared),
                            LognormalDistribution::from_db(mean_db, sigma_db));
}

double SuzukiDistribution::pdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  const double two_sigma_sq = 2.0 * rayleigh_sigma_ * rayleigh_sigma_;
  double sum = 0.0;
  for (std::size_t i = 0; i < mixture_gains_.size(); ++i) {
    const double a2 = mixture_gains_[i] * mixture_gains_[i];
    const double x = r * r / (two_sigma_sq * a2);
    sum += mixture_weights_[i] * 2.0 * r / (two_sigma_sq * a2) * std::exp(-x);
  }
  return sum;
}

double SuzukiDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  const double two_sigma_sq = 2.0 * rayleigh_sigma_ * rayleigh_sigma_;
  double sum = 0.0;
  for (std::size_t i = 0; i < mixture_gains_.size(); ++i) {
    const double a2 = mixture_gains_[i] * mixture_gains_[i];
    sum += mixture_weights_[i] * -std::expm1(-r * r / (two_sigma_sq * a2));
  }
  return sum;
}

double SuzukiDistribution::mean() const {
  return shadowing_.mean() * rayleigh_sigma_ *
         std::sqrt(kPi / 2.0);
}

double SuzukiDistribution::second_moment() const {
  return shadowing_.second_moment() * 2.0 * rayleigh_sigma_ * rayleigh_sigma_;
}

double SuzukiDistribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  RFADE_EXPECTS(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0, 1)");
  // Acklam's rational approximation (|error| < 1.2e-9 over (0,1)) ...
  constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                           -2.759285104469687e+02, 1.383577518672690e+02,
                           -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                           -1.556989798598866e+02, 6.680131188771972e+01,
                           -1.328068155288572e+01};
  constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                           -2.400758277161838e+00, -2.549732539343734e+00,
                           4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                           2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // ... sharpened to full double precision with one Halley step.
  const double err = normal_cdf(x) - p;
  const double u = err * std::sqrt(2.0 * kPi) *
                   std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

double normal_cdf(double x, double mean, double stddev) {
  RFADE_EXPECTS(stddev > 0.0, "normal_cdf: stddev must be positive");
  return normal_cdf((x - mean) / stddev);
}

double exponential_cdf(double x, double rate) {
  RFADE_EXPECTS(rate > 0.0, "exponential_cdf: rate must be positive");
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * x);
}

}  // namespace rfade::stats
