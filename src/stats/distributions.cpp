#include "rfade/stats/distributions.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::stats {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}

RayleighDistribution::RayleighDistribution(double sigma) : sigma_(sigma) {
  RFADE_EXPECTS(sigma > 0.0, "RayleighDistribution: sigma must be positive");
}

RayleighDistribution RayleighDistribution::from_gaussian_power(
    double sigma_g_squared) {
  RFADE_EXPECTS(sigma_g_squared > 0.0,
                "RayleighDistribution: power must be positive");
  return RayleighDistribution(std::sqrt(0.5 * sigma_g_squared));
}

double RayleighDistribution::pdf(double r) const {
  if (r < 0.0) {
    return 0.0;
  }
  const double s2 = sigma_ * sigma_;
  return r / s2 * std::exp(-0.5 * r * r / s2);
}

double RayleighDistribution::cdf(double r) const {
  if (r <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::exp(-0.5 * r * r / (sigma_ * sigma_));
}

double RayleighDistribution::quantile(double p) const {
  RFADE_EXPECTS(p >= 0.0 && p < 1.0, "Rayleigh quantile: p must be in [0,1)");
  return sigma_ * std::sqrt(-2.0 * std::log(1.0 - p));
}

double RayleighDistribution::mean() const {
  return sigma_ * std::sqrt(0.5 * kPi);
}

double RayleighDistribution::variance() const {
  return (2.0 - 0.5 * kPi) * sigma_ * sigma_;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_cdf(double x, double mean, double stddev) {
  RFADE_EXPECTS(stddev > 0.0, "normal_cdf: stddev must be positive");
  return normal_cdf((x - mean) / stddev);
}

double exponential_cdf(double x, double rate) {
  RFADE_EXPECTS(rate > 0.0, "exponential_cdf: rate must be positive");
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * x);
}

}  // namespace rfade::stats
