#include "rfade/telemetry/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace rfade::telemetry {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

/// `name{labels}` or bare `name`; \p extra_label (e.g. le="...") is
/// appended after the instrument's own labels.
void append_series(std::string& out, const std::string& name,
                   const std::string& suffix, const std::string& labels,
                   const std::string& extra_label = {}) {
  out += name;
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) {
      out += ',';
    }
    out += extra_label;
    out += '}';
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  out += buffer;
}

void append_double(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

/// `# TYPE` line, once per metric name (entries arrive name-sorted).
void append_type(std::string& out, std::string& last_typed,
                 const std::string& name, const char* type) {
  if (name == last_typed) {
    return;
  }
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  last_typed = name;
}

}  // namespace

std::string prometheus_text(const Registry& registry) {
  std::string out;
  std::string last_typed;

  for (const CounterEntry& entry : registry.counters()) {
    append_type(out, last_typed, entry.name, "counter");
    append_series(out, entry.name, "", entry.labels);
    out += ' ';
    append_u64(out, entry.value);
    out += '\n';
  }

  for (const GaugeEntry& entry : registry.gauges()) {
    append_type(out, last_typed, entry.name, "gauge");
    append_series(out, entry.name, "", entry.labels);
    out += ' ';
    append_double(out, entry.value);
    out += '\n';
  }

  for (const HistogramEntry& entry : registry.histograms()) {
    append_type(out, last_typed, entry.name, "histogram");
    const HistogramSnapshot snap = entry.histogram->snapshot();
    // Cumulative counts at occupied upper bounds only; le is the largest
    // value the bucket admits, so the series is a valid (non-decreasing)
    // Prometheus histogram even with the empty buckets elided.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) {
        continue;
      }
      cumulative += snap.buckets[i];
      std::string le = "le=\"";
      char bound[24];
      std::snprintf(bound, sizeof bound, "%" PRIu64,
                    LatencyHistogram::bucket_upper(i));
      le += bound;
      le += '"';
      append_series(out, entry.name, "_bucket", entry.labels, le);
      out += ' ';
      append_u64(out, cumulative);
      out += '\n';
    }
    append_series(out, entry.name, "_bucket", entry.labels, "le=\"+Inf\"");
    out += ' ';
    append_u64(out, snap.count);
    out += '\n';
    append_series(out, entry.name, "_sum", entry.labels);
    out += ' ';
    append_u64(out, snap.sum);
    out += '\n';
    append_series(out, entry.name, "_count", entry.labels);
    out += ' ';
    append_u64(out, snap.count);
    out += '\n';
  }

  return out;
}

std::string json_snapshot(const Registry& registry) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kJsonSchemaVersion);
  out += ",\"counters\":[";
  bool first = true;
  for (const CounterEntry& entry : registry.counters()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, entry.name);
    out += "\",\"labels\":\"";
    append_escaped(out, entry.labels);
    out += "\",\"value\":";
    append_u64(out, entry.value);
    out += '}';
  }

  out += "],\"gauges\":[";
  first = true;
  for (const GaugeEntry& entry : registry.gauges()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, entry.name);
    out += "\",\"labels\":\"";
    append_escaped(out, entry.labels);
    out += "\",\"value\":";
    append_double(out, entry.value);
    out += '}';
  }

  out += "],\"histograms\":[";
  first = true;
  for (const HistogramEntry& entry : registry.histograms()) {
    if (!first) {
      out += ',';
    }
    first = false;
    const HistogramSnapshot snap = entry.histogram->snapshot();
    out += "{\"name\":\"";
    append_escaped(out, entry.name);
    out += "\",\"labels\":\"";
    append_escaped(out, entry.labels);
    out += "\",\"count\":";
    append_u64(out, snap.count);
    out += ",\"sum\":";
    append_u64(out, snap.sum);
    out += ",\"min\":";
    append_u64(out, snap.min);
    out += ",\"max\":";
    append_u64(out, snap.max);
    out += ",\"mean\":";
    append_double(out, snap.mean());
    out += ",\"p50\":";
    append_double(out, snap.quantile(0.50));
    out += ",\"p90\":";
    append_double(out, snap.quantile(0.90));
    out += ",\"p99\":";
    append_double(out, snap.quantile(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += "{\"le\":";
      append_u64(out, LatencyHistogram::bucket_upper(i));
      out += ",\"count\":";
      append_u64(out, snap.buckets[i]);
      out += '}';
    }
    out += "]}";
  }

  out += "]}";
  return out;
}

}  // namespace rfade::telemetry
