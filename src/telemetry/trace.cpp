#include "rfade/telemetry/trace.hpp"

#include <cstdio>
#include <utility>

namespace rfade::telemetry {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

std::size_t Tracer::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

/// JSON string escaping for event names (control chars, quote, slash).
void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> snapshot = events();
  std::string out;
  out.reserve(64 + snapshot.size() * 96);
  out += "{\"traceEvents\":[";
  char buffer[96];
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& event = snapshot[i];
    if (i != 0) {
      out += ',';
    }
    out += "{\"name\":\"";
    append_json_escaped(out, event.name);
    std::snprintf(buffer, sizeof buffer,
                  "\",\"cat\":\"rfade\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%zu}",
                  event.ts_us, event.dur_us, event.thread);
    out += buffer;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Span::~Span() {
  if (name_ == nullptr) {
    return;
  }
  const std::uint64_t end_ns = now_ns();
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) {
    return;  // tracing stopped mid-span; drop rather than misclock
  }
  TraceEvent event;
  event.name = name_;
  event.thread = thread_index();
  // Spans opened before the tracer epoch (impossible in practice, since
  // enabling precedes recording) clamp to t = 0.
  const std::uint64_t epoch = tracer.epoch_ns();
  event.ts_us =
      start_ns_ > epoch ? static_cast<double>(start_ns_ - epoch) / 1e3 : 0.0;
  event.dur_us = static_cast<double>(end_ns - start_ns_) / 1e3;
  tracer.record(std::move(event));
}

}  // namespace rfade::telemetry
