#include "rfade/telemetry/registry.hpp"

namespace rfade::telemetry {

std::string label(std::string_view key, std::string_view value) {
  std::string formatted;
  formatted.reserve(key.size() + value.size() + 3);
  formatted.append(key);
  formatted.append("=\"");
  formatted.append(value);
  formatted.push_back('"');
  return formatted;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

namespace {

/// Shared find-or-create over the three instrument maps.
template <typename Instrument, typename Map>
std::shared_ptr<Instrument> intern(std::mutex& mutex, Map& map,
                                   const std::string& name,
                                   const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = map.try_emplace({name, labels});
  if (inserted) {
    it->second = std::make_shared<Instrument>();
  }
  return it->second;
}

}  // namespace

std::shared_ptr<Counter> Registry::counter(const std::string& name,
                                           const std::string& labels) {
  return intern<Counter>(mutex_, counters_, name, labels);
}

std::shared_ptr<Gauge> Registry::gauge(const std::string& name,
                                       const std::string& labels) {
  return intern<Gauge>(mutex_, gauges_, name, labels);
}

std::shared_ptr<LatencyHistogram> Registry::histogram(
    const std::string& name, const std::string& labels) {
  return intern<LatencyHistogram>(mutex_, histograms_, name, labels);
}

std::vector<CounterEntry> Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterEntry> entries;
  entries.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    entries.push_back({key.first, key.second, counter->value()});
  }
  return entries;
}

std::vector<GaugeEntry> Registry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeEntry> entries;
  entries.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    entries.push_back({key.first, key.second, gauge->value()});
  }
  return entries;
}

std::vector<HistogramEntry> Registry::histograms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramEntry> entries;
  entries.reserve(histograms_.size());
  for (const auto& [key, histogram] : histograms_) {
    entries.push_back({key.first, key.second, histogram});
  }
  return entries;
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace rfade::telemetry
