#include "rfade/telemetry/instruments.hpp"

#include <algorithm>
#include <cmath>

namespace rfade::telemetry {

std::size_t thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_.compare_exchange_weak(seen, other_max,
                                     std::memory_order_relaxed)) {
  }
  const std::uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen &&
         !min_.compare_exchange_weak(seen, other_min,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count();
  snap.sum = sum();
  snap.min = min();
  snap.max = max();
  return snap;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) {
    return 0.0;
  }
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Nearest rank: the smallest rank r (1-based) with r >= q * count.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count)));
  if (rank == 0) {
    rank = 1;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // The bucket midpoint halves the worst-case quantization error;
      // the exact min/max clamp keeps every quantile inside the observed
      // range (a midpoint can otherwise exceed max in a sparse bucket),
      // so p50 <= p99 <= max always holds in exports.
      const double midpoint =
          static_cast<double>(LatencyHistogram::bucket_lower(i)) +
          static_cast<double>(LatencyHistogram::bucket_width(i) - 1) / 2.0;
      return std::min(std::max(midpoint, static_cast<double>(min)),
                      static_cast<double>(max));
    }
  }
  return static_cast<double>(max);  // unreachable when counts are consistent
}

}  // namespace rfade::telemetry
