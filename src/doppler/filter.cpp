#include "rfade/doppler/filter.hpp"

#include <cmath>

#include "rfade/fft/fft.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::doppler {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}

DopplerFilterDesign young_beaulieu_filter(std::size_t m, double fm) {
  RFADE_EXPECTS(m >= 8, "young_beaulieu_filter: M must be >= 8");
  RFADE_EXPECTS(fm > 0.0 && fm < 0.5,
                "young_beaulieu_filter: fm must lie in (0, 0.5)");
  const double fm_m = fm * static_cast<double>(m);
  const auto km = static_cast<std::size_t>(std::floor(fm_m));
  RFADE_EXPECTS(km >= 1, "young_beaulieu_filter: fm*M must be >= 1");
  RFADE_EXPECTS(2 * km + 1 < m,
                "young_beaulieu_filter: passband must fit below Nyquist");

  DopplerFilterDesign design;
  design.coefficients.assign(m, 0.0);
  design.normalized_doppler = fm;
  design.km = km;

  // Eq. (21), in-band samples of the Jakes spectrum: k = 1 .. km-1.
  for (std::size_t k = 1; k < km; ++k) {
    const double ratio = static_cast<double>(k) / fm_m;
    design.coefficients[k] =
        std::sqrt(1.0 / (2.0 * std::sqrt(1.0 - ratio * ratio)));
  }

  // Eq. (21), band-edge area-matching coefficient at k = km.
  const double km_d = static_cast<double>(km);
  const double edge =
      std::sqrt(km_d / 2.0 *
                (kPi / 2.0 -
                 std::atan((km_d - 1.0) / std::sqrt(2.0 * km_d - 1.0))));
  design.coefficients[km] = edge;

  // Eq. (21), mirrored negative-frequency half: F[M-k] = F[k].
  design.coefficients[m - km] = edge;
  for (std::size_t k = m - km + 1; k < m; ++k) {
    const double ratio = static_cast<double>(m - k) / fm_m;
    design.coefficients[k] =
        std::sqrt(1.0 / (2.0 * std::sqrt(1.0 - ratio * ratio)));
  }
  return design;
}

double post_filter_variance(const DopplerFilterDesign& design,
                            double input_variance_per_dim) {
  RFADE_EXPECTS(input_variance_per_dim > 0.0,
                "post_filter_variance: input variance must be positive");
  double sum_f2 = 0.0;
  for (const double f : design.coefficients) {
    sum_f2 += f * f;
  }
  const double m = static_cast<double>(design.size());
  return 2.0 * input_variance_per_dim / (m * m) * sum_f2;  // Eq. (19)
}

numeric::RVector theoretical_autocorrelation(const DopplerFilterDesign& design,
                                             std::size_t max_lag) {
  RFADE_EXPECTS(max_lag < design.size(),
                "theoretical_autocorrelation: lag exceeds IDFT size");
  numeric::CVector f2(design.size());
  for (std::size_t k = 0; k < design.size(); ++k) {
    f2[k] = numeric::cdouble(design.coefficients[k] * design.coefficients[k],
                             0.0);
  }
  const numeric::CVector g = fft::idft(f2);  // Eq. (17)
  numeric::RVector out(max_lag + 1);
  for (std::size_t d = 0; d <= max_lag; ++d) {
    out[d] = g[d].real();
  }
  return out;
}

numeric::RVector theoretical_normalized_autocorrelation(
    const DopplerFilterDesign& design, std::size_t max_lag) {
  numeric::RVector g = theoretical_autocorrelation(design, max_lag);
  RFADE_EXPECTS(g[0] > 0.0, "normalized autocorrelation: zero g[0]");
  const double g0 = g[0];
  for (double& value : g) {
    value /= g0;
  }
  return g;
}

}  // namespace rfade::doppler
