#include "rfade/doppler/streaming.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::doppler {

StreamingFadingSource::StreamingFadingSource(std::size_t m, double fm,
                                             double input_variance_per_dim,
                                             std::size_t overlap)
    : branch_(m, fm, input_variance_per_dim), overlap_(overlap) {
  RFADE_EXPECTS(overlap >= 1, "StreamingFadingSource: overlap must be >= 1");
  RFADE_EXPECTS(overlap < m / 2,
                "StreamingFadingSource: overlap must be < M/2");
}

void StreamingFadingSource::advance_block(random::Rng& rng) {
  if (!primed_) {
    current_ = branch_.generate_block(rng);
    next_ = branch_.generate_block(rng);
    primed_ = true;
    return;
  }
  current_ = std::move(next_);
  next_ = branch_.generate_block(rng);
}

numeric::cdouble StreamingFadingSource::next(random::Rng& rng) {
  const std::size_t m = branch_.block_size();
  if (!primed_) {
    advance_block(rng);
    position_ = 0;
  } else if (position_ >= m) {
    advance_block(rng);
    // The first `overlap_` samples of the new current block were already
    // blended into the tail of the previous one; skip past them.
    position_ = overlap_;
  }
  const std::size_t fade_start = m - overlap_;
  numeric::cdouble sample;
  if (position_ < fade_start) {
    sample = current_[position_];
  } else {
    // Equal-power crossfade into the head of the next block.
    const double w = static_cast<double>(position_ - fade_start + 1) /
                     static_cast<double>(overlap_ + 1);
    const std::size_t next_index = position_ - fade_start;
    sample = std::sqrt(1.0 - w) * current_[position_] +
             std::sqrt(w) * next_[next_index];
  }
  ++position_;
  return sample;
}

numeric::CVector StreamingFadingSource::take(std::size_t count,
                                             random::Rng& rng) {
  numeric::CVector out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = next(rng);
  }
  return out;
}

}  // namespace rfade::doppler
