#include "rfade/doppler/streaming.hpp"

#include "rfade/support/contracts.hpp"

namespace rfade::doppler {

namespace {

std::size_t checked_overlap(std::size_t overlap) {
  // The shim keeps the historical explicit contract: an overlap of 0 is
  // rejected here rather than mapped to the stream-layer default.
  RFADE_EXPECTS(overlap >= 1, "StreamingFadingSource: overlap must be >= 1");
  return overlap;
}

}  // namespace

StreamingFadingSource::StreamingFadingSource(std::size_t m, double fm,
                                             double input_variance_per_dim,
                                             std::size_t overlap)
    : design_(StreamBackend::WindowedOverlapAdd, m, fm,
              input_variance_per_dim, checked_overlap(overlap)),
      source_(design_.make_source(0)) {}

numeric::cdouble StreamingFadingSource::next(random::Rng& rng) {
  if (position_ >= buffer_.size()) {
    buffer_.resize(design_.block_size());
    source_->advance(rng, block_index_);
    source_->fill(buffer_);
    ++block_index_;
    position_ = 0;
  }
  return buffer_[position_++];
}

numeric::CVector StreamingFadingSource::take(std::size_t count,
                                             random::Rng& rng) {
  numeric::CVector out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = next(rng);
  }
  return out;
}

}  // namespace rfade::doppler
