#include "rfade/doppler/branch_source.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "rfade/fft/fft.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/bulk_gaussian.hpp"
#include "rfade/random/xoshiro.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::doppler {

const char* stream_backend_name(StreamBackend backend) noexcept {
  switch (backend) {
    case StreamBackend::IndependentBlock:
      return "independent-block";
    case StreamBackend::WindowedOverlapAdd:
      return "windowed-overlap-add";
    case StreamBackend::OverlapSaveFir:
      return "overlap-save-fir";
  }
  return "unknown";
}

// --- sources ----------------------------------------------------------------

namespace {

/// Shared advance half of the rng-driven backends: draw the block's
/// weighted spectrum in the caller's serial order, synthesize it later
/// (in fill) off the serial path.
class SpectrumDrawingSource : public BranchSource {
 public:
  explicit SpectrumDrawingSource(const BranchSourceDesign& design)
      : design_(design) {}

  void advance(random::Rng& rng, std::uint64_t /*block_index*/) override {
    spectrum_ = design_.branch().draw_spectrum(rng);
  }

 protected:
  const BranchSourceDesign& design_;
  numeric::CVector spectrum_;
};

}  // namespace

/// Paper Sec. 5 verbatim: every block is an independent IDFT realisation.
class IndependentBlockBranchSource final : public SpectrumDrawingSource {
 public:
  using SpectrumDrawingSource::SpectrumDrawingSource;

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return design_.block_size();
  }

  void fill(std::span<numeric::cdouble> out) override {
    const numeric::CVector u = design_.branch().synthesize(spectrum_);
    std::copy(u.begin(), u.end(), out.begin());
  }

  void reset() override { spectrum_.clear(); }
};

/// Equal-power crossfade of consecutive independent block realisations.
/// Chunk 0 plays the first block's head verbatim; every later chunk blends
/// the previous block's tail into the current block's head over `overlap`
/// samples — the exact sample sequence of the historical per-sample
/// StreamingFadingSource, emitted M - overlap samples at a time.
class WolaBranchSource final : public SpectrumDrawingSource {
 public:
  using SpectrumDrawingSource::SpectrumDrawingSource;

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return design_.block_size();
  }

  void fill(std::span<numeric::cdouble> out) override {
    const std::size_t hop = design_.block_size();
    const std::size_t overlap = design_.overlap();
    numeric::CVector current = design_.branch().synthesize(spectrum_);
    if (previous_.empty()) {
      std::copy(current.begin(), current.begin() + hop, out.begin());
    } else {
      // out[i] = fade_out[i] * previous[hop+i] + fade_in[i] * current[i],
      // as one vectorized pass (bit-identical to the scalar loop).
      numeric::crossfade_block(design_.fade_out_.data(),
                               design_.fade_in_.data(),
                               previous_.data() + hop, current.data(), overlap,
                               out.data());
      std::copy(current.begin() + overlap, current.begin() + hop,
                out.begin() + overlap);
    }
    previous_ = std::move(current);
  }

  void reset() override {
    spectrum_.clear();
    previous_.clear();
  }

 private:
  numeric::CVector previous_;
};

/// Exact continuous stream: overlap-save FFT convolution of the centered
/// Eq. (21) impulse response against a persistent white Gaussian input
/// stream.  Output block b is the linear convolution evaluated over input
/// samples [bM, bM + 2M) of the branch's bulk-Philox substream — a pure
/// function of (branch seed, block index), with a shift fast path when
/// blocks are consumed in order.
class OverlapSaveBranchSource final : public BranchSource {
 public:
  OverlapSaveBranchSource(const BranchSourceDesign& design,
                          std::uint64_t branch_seed)
      : design_(design), branch_seed_(branch_seed) {}

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return design_.block_size();
  }

  void advance(random::Rng& /*rng*/, std::uint64_t block_index) override {
    pending_block_ = block_index;
  }

  void fill(std::span<numeric::cdouble> out) override {
    const std::size_t m = design_.block_size();
    ensure_inputs(pending_block_);
    // Circular 2M convolution; entries [M-1, 2M) are wrap-free, i.e. the
    // linear convolution of the kernel with this input span.
    if (const fft::Pow2Plan* plan = design_.convolution_plan_.get()) {
      // Planned path: cached twiddles/permutation, in-place on reusable
      // scratch — bit-identical to the ad-hoc transforms below, minus
      // the per-call twiddle recomputation and allocations.
      scratch_ = inputs_;
      plan->transform(scratch_, fft::Direction::Forward);
      for (std::size_t k = 0; k < scratch_.size(); ++k) {
        scratch_[k] *= design_.kernel_spectrum_[k];
      }
      plan->transform(scratch_, fft::Direction::Inverse);
      const double scale = 1.0 / static_cast<double>(2 * m);
      for (std::size_t i = 0; i < m; ++i) {
        out[i] = scratch_[m - 1 + i] * scale;
      }
      return;
    }
    numeric::CVector spectrum = fft::dft(inputs_);
    for (std::size_t k = 0; k < spectrum.size(); ++k) {
      spectrum[k] *= design_.kernel_spectrum_[k];
    }
    const numeric::CVector y = fft::idft(spectrum);
    std::copy(y.begin() + (m - 1), y.begin() + (2 * m - 1), out.begin());
  }

  void reset() override {
    inputs_.clear();
    have_inputs_ = false;
  }

 private:
  /// Make inputs_ hold samples [block*M, block*M + 2M) of the branch
  /// input substream, shifting the overlapping half when advancing
  /// sequentially and regenerating both halves otherwise.
  void ensure_inputs(std::uint64_t block) {
    const std::size_t m = design_.block_size();
    if (re_.size() < m) {
      re_.resize(m);
      im_.resize(m);
    }
    if (have_inputs_ && block == input_block_) {
      return;
    }
    if (have_inputs_ && block == input_block_ + 1) {
      std::copy(inputs_.begin() + m, inputs_.end(), inputs_.begin());
      fetch(block * m + m, inputs_.data() + m);
    } else {
      inputs_.resize(2 * m);
      fetch(block * m, inputs_.data());
      fetch(block * m + m, inputs_.data() + m);
    }
    input_block_ = block;
    have_inputs_ = true;
  }

  /// One M-sample planar bulk fill at absolute stream offset
  /// \p first_sample, interleaved into \p out.
  void fetch(std::uint64_t first_sample, numeric::cdouble* out) {
    const std::size_t m = design_.block_size();
    random::fill_complex_gaussians_planar(
        branch_seed_, /*stream=*/0, design_.input_stream_variance_,
        first_sample, m, re_.data(), im_.data());
    for (std::size_t t = 0; t < m; ++t) {
      out[t] = numeric::cdouble(re_[t], im_[t]);
    }
  }

  const BranchSourceDesign& design_;
  std::uint64_t branch_seed_;
  std::uint64_t pending_block_ = 0;
  numeric::CVector inputs_;  ///< [input_block_*M, input_block_*M + 2M)
  std::uint64_t input_block_ = 0;
  bool have_inputs_ = false;
  numeric::RVector re_;
  numeric::RVector im_;
  numeric::CVector scratch_;  ///< planned-transform workspace (2M)
};

// --- design -----------------------------------------------------------------

BranchSourceDesign::BranchSourceDesign(StreamBackend backend, std::size_t m,
                                       double fm,
                                       double input_variance_per_dim,
                                       std::size_t overlap)
    : backend_(backend), branch_(m, fm, input_variance_per_dim) {
  switch (backend_) {
    case StreamBackend::IndependentBlock:
      RFADE_EXPECTS(overlap == 0,
                    "BranchSourceDesign: overlap is a WOLA parameter");
      block_size_ = m;
      break;
    case StreamBackend::WindowedOverlapAdd: {
      overlap_ = overlap == 0 ? m / 8 : overlap;
      RFADE_EXPECTS(overlap_ >= 1,
                    "BranchSourceDesign: WOLA overlap must be >= 1");
      RFADE_EXPECTS(overlap_ < m / 2,
                    "BranchSourceDesign: WOLA overlap must be < M/2");
      block_size_ = m - overlap_;
      fade_in_.resize(overlap_);
      fade_out_.resize(overlap_);
      for (std::size_t i = 0; i < overlap_; ++i) {
        // The historical StreamingFadingSource weights, bit-for-bit.
        const double w = static_cast<double>(i + 1) /
                         static_cast<double>(overlap_ + 1);
        fade_in_[i] = std::sqrt(w);
        fade_out_[i] = std::sqrt(1.0 - w);
      }
      break;
    }
    case StreamBackend::OverlapSaveFir: {
      RFADE_EXPECTS(overlap == 0,
                    "BranchSourceDesign: overlap is a WOLA parameter");
      block_size_ = m;
      // Impulse response h = IDFT(F): DFT(h) = F, so h convolved with a
      // white stream of per-sample complex variance 2 sigma_orig^2 / M
      // reproduces the Fig. 2 block statistics — Parseval gives
      // E|y|^2 = (2 sigma_orig^2 / M) sum|h|^2 = sigma_g^2 (Eq. 19).
      numeric::CVector f(m);
      for (std::size_t k = 0; k < m; ++k) {
        f[k] = numeric::cdouble(branch_.filter().coefficients[k], 0.0);
      }
      const numeric::CVector h = fft::idft(f);
      // h peaks at l = 0 (mod M); center it so the *linear* FIR
      // autocorrelation matches the circular Eq. (17) law up to the small
      // tail wraparound, at the price of an irrelevant M/2 group delay.
      numeric::CVector centered(2 * m, numeric::cdouble{});
      const std::size_t shift = m / 2;
      for (std::size_t k = 0; k < m; ++k) {
        centered[k] = h[(k + m - shift) % m];
      }
      kernel_spectrum_ = fft::dft(centered);
      input_stream_variance_ = 2.0 * input_variance_per_dim /
                               static_cast<double>(m);
      if (fft::is_power_of_two(2 * m)) {
        convolution_plan_ = std::make_shared<const fft::Pow2Plan>(2 * m);
      }
      break;
    }
  }
}

std::size_t BranchSourceDesign::continuity_horizon() const noexcept {
  switch (backend_) {
    case StreamBackend::IndependentBlock:
      return 0;
    case StreamBackend::WindowedOverlapAdd:
      return overlap_;
    case StreamBackend::OverlapSaveFir:
      return std::numeric_limits<std::size_t>::max();
  }
  return 0;
}

std::unique_ptr<BranchSource> BranchSourceDesign::make_source(
    std::uint64_t branch_seed) const {
  switch (backend_) {
    case StreamBackend::IndependentBlock:
      return std::make_unique<IndependentBlockBranchSource>(*this);
    case StreamBackend::WindowedOverlapAdd:
      return std::make_unique<WolaBranchSource>(*this);
    case StreamBackend::OverlapSaveFir:
      return std::make_unique<OverlapSaveBranchSource>(*this, branch_seed);
  }
  return nullptr;
}

std::uint64_t BranchSourceDesign::input_seed(std::uint64_t seed,
                                             std::size_t branch) {
  // splitmix64 over (seed, branch), salted so branch input streams are
  // disjoint from the cascade stage seeds (splitmix of
  // seed + (stage+1)*golden) and the TWDP phase seed for every plausible
  // branch count.
  std::uint64_t state = (seed ^ 0x0B5A9C1D2E3F4A5BULL) +
                        (static_cast<std::uint64_t>(branch) + 1) *
                            0x9E3779B97F4A7C15ULL;
  return random::splitmix64(state);
}

}  // namespace rfade::doppler
