#include "rfade/doppler/branch_source.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "rfade/fft/fft.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/bulk_gaussian.hpp"
#include "rfade/random/xoshiro.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/parallel.hpp"

namespace rfade::doppler {

const char* stream_backend_name(StreamBackend backend) noexcept {
  switch (backend) {
    case StreamBackend::IndependentBlock:
      return "independent-block";
    case StreamBackend::WindowedOverlapAdd:
      return "windowed-overlap-add";
    case StreamBackend::OverlapSaveFir:
      return "overlap-save-fir";
  }
  return "unknown";
}

// --- sources ----------------------------------------------------------------

namespace {

/// Shared advance half of the rng-driven backends: draw the block's
/// weighted spectrum in the caller's serial order, synthesize it later
/// (in fill) off the serial path.
class SpectrumDrawingSource : public BranchSource {
 public:
  explicit SpectrumDrawingSource(const BranchSourceDesign& design)
      : design_(design) {}

  void advance(random::Rng& rng, std::uint64_t /*block_index*/) override {
    spectrum_ = design_.branch().draw_spectrum(rng);
  }

 protected:
  const BranchSourceDesign& design_;
  numeric::CVector spectrum_;
};

}  // namespace

/// Paper Sec. 5 verbatim: every block is an independent IDFT realisation.
class IndependentBlockBranchSource final : public SpectrumDrawingSource {
 public:
  using SpectrumDrawingSource::SpectrumDrawingSource;

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return design_.block_size();
  }

  void fill(std::span<numeric::cdouble> out) override {
    design_.branch().synthesize_into(spectrum_, u_);
    std::copy(u_.begin(), u_.end(), out.begin());
  }

  void fill_f32(std::span<numeric::cfloat> out) override {
    // Synthesis stays double (the IDFT *is* this backend's cost and the
    // design is double); only the emitted block narrows.
    design_.branch().synthesize_into(spectrum_, u_);
    for (std::size_t l = 0; l < u_.size(); ++l) {
      out[l] = numeric::cfloat(static_cast<float>(u_[l].real()),
                               static_cast<float>(u_[l].imag()));
    }
  }

  void reset() override { spectrum_.clear(); }

 private:
  numeric::CVector u_;  ///< warm synthesis buffer — steady state allocates nothing
};

/// Equal-power crossfade of consecutive independent block realisations.
/// Chunk 0 plays the first block's head verbatim; every later chunk blends
/// the previous block's tail into the current block's head over `overlap`
/// samples — the exact sample sequence of the historical per-sample
/// StreamingFadingSource, emitted M - overlap samples at a time.
class WolaBranchSource final : public SpectrumDrawingSource {
 public:
  using SpectrumDrawingSource::SpectrumDrawingSource;

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return design_.block_size();
  }

  void fill(std::span<numeric::cdouble> out) override {
    const std::size_t hop = design_.block_size();
    const std::size_t overlap = design_.overlap();
    design_.branch().synthesize_into(spectrum_, current_);
    if (previous_.empty()) {
      std::copy(current_.begin(), current_.begin() + hop, out.begin());
    } else {
      // out[i] = fade_out[i] * previous[hop+i] + fade_in[i] * current[i],
      // as one vectorized pass (bit-identical to the scalar loop).
      numeric::crossfade_block(design_.fade_out_.data(),
                               design_.fade_in_.data(),
                               previous_.data() + hop, current_.data(), overlap,
                               out.data());
      std::copy(current_.begin() + overlap, current_.begin() + hop,
                out.begin() + overlap);
    }
    // Rotate by swapping so the outgoing buffer's capacity feeds the next
    // synthesize_into — steady state allocates nothing.
    std::swap(previous_, current_);
  }

  void fill_f32(std::span<numeric::cfloat> out) override {
    const std::size_t hop = design_.block_size();
    const std::size_t overlap = design_.overlap();
    design_.branch().synthesize_into(spectrum_, current_);
    current_f_.resize(current_.size());
    for (std::size_t l = 0; l < current_.size(); ++l) {
      current_f_[l] = numeric::cfloat(static_cast<float>(current_[l].real()),
                                      static_cast<float>(current_[l].imag()));
    }
    if (previous_f_.empty()) {
      std::copy(current_f_.begin(), current_f_.begin() + hop, out.begin());
    } else {
      // The crossfade itself runs in float over the narrowed fade weights
      // — this is the float stream's own reference sequence, replayed
      // identically by keyed generation and seeks.
      numeric::crossfade_block(design_.fade_out_f_.data(),
                               design_.fade_in_f_.data(),
                               previous_f_.data() + hop, current_f_.data(),
                               overlap, out.data());
      std::copy(current_f_.begin() + overlap, current_f_.begin() + hop,
                out.begin() + overlap);
    }
    std::swap(previous_f_, current_f_);
  }

  void reset() override {
    spectrum_.clear();
    previous_.clear();
    previous_f_.clear();
  }

 private:
  numeric::CVector previous_;
  numeric::CVector current_;
  numeric::CVectorF previous_f_;
  numeric::CVectorF current_f_;
};

/// Exact continuous stream: overlap-save FFT convolution of the centered
/// Eq. (21) impulse response against a persistent white Gaussian input
/// stream.  Output block b is the linear convolution evaluated over input
/// samples [bM, bM + 2M) of the branch's bulk-Philox substream — a pure
/// function of (branch seed, block index), with a shift fast path when
/// blocks are consumed in order.
class OverlapSaveBranchSource final : public BranchSource {
 public:
  OverlapSaveBranchSource(const BranchSourceDesign& design,
                          std::uint64_t branch_seed)
      : design_(design), branch_seed_(branch_seed) {}

  [[nodiscard]] std::size_t block_size() const noexcept override {
    return design_.block_size();
  }

  void advance(random::Rng& /*rng*/, std::uint64_t block_index) override {
    pending_block_ = block_index;
  }

  void fill(std::span<numeric::cdouble> out) override {
    const std::size_t m = design_.block_size();
    ensure_inputs(pending_block_);
    const double scale = 1.0 / static_cast<double>(2 * m);
    // Circular 2M convolution; entries [M-1, 2M) are wrap-free, i.e. the
    // linear convolution of the kernel with this input span.
    if (const fft::RealConvolver* convolver = design_.convolver_.get()) {
      // Real-kernel path: the I/Q tapes already live packed as one complex
      // sequence, so the convolver's single forward/inverse pass over the
      // cached plan convolves both quadratures (pairing trick) —
      // bit-identical to transforming inputs_ and multiplying by
      // kernel_spectrum_ by hand.
      convolver->convolve_packed(inputs_, scratch_);
      for (std::size_t i = 0; i < m; ++i) {
        out[i] = scratch_[m - 1 + i] * scale;
      }
      return;
    }
    // Non-power-of-two 2M: the design's Bluestein plan with preallocated
    // out/scratch workspaces — same value sequence as the historical
    // fft::dft/idft calls, without rebuilding chirp tables or allocating
    // four vectors per block.
    const fft::BluesteinPlan& plan = *design_.fallback_plan_;
    plan.transform(inputs_, spectrum_, fft::Direction::Forward, bwork_);
    for (std::size_t k = 0; k < spectrum_.size(); ++k) {
      spectrum_[k] *= design_.kernel_spectrum_[k];
    }
    plan.transform(spectrum_, y_, fft::Direction::Inverse, bwork_);
    for (std::size_t i = 0; i < m; ++i) {
      out[i] = y_[m - 1 + i] * scale;
    }
  }

  void fill_f32(std::span<numeric::cfloat> out) override {
    const std::size_t m = design_.block_size();
    if (const fft::RealConvolverF* convolver = design_.convolver_f_.get()) {
      // Native float path: float Philox tape, float transforms over the
      // design's narrowed kernel spectrum.  This sequence is the float
      // stream's bit-reference; the batched sweep reproduces it exactly.
      ensure_inputs_f32(pending_block_);
      const float scale = 1.0f / static_cast<float>(2 * m);
      convolver->convolve_packed(inputs_f_, scratch_f_);
      for (std::size_t i = 0; i < m; ++i) {
        out[i] = scratch_f_[m - 1 + i] * scale;
      }
      return;
    }
    // Non-power-of-two 2M has no float transform: run the double
    // Bluestein fill and narrow — still deterministic and keyed, just not
    // float-accelerated.
    tmp_.resize(m);
    fill(std::span<numeric::cdouble>(tmp_));
    for (std::size_t i = 0; i < m; ++i) {
      out[i] = numeric::cfloat(static_cast<float>(tmp_[i].real()),
                               static_cast<float>(tmp_[i].imag()));
    }
  }

  void reset() override {
    inputs_.clear();
    have_inputs_ = false;
    inputs_f_.clear();
    have_inputs_f_ = false;
  }

 private:
  /// Make inputs_ hold samples [block*M, block*M + 2M) of the branch
  /// input substream, shifting the overlapping half when advancing
  /// sequentially and regenerating both halves otherwise.
  void ensure_inputs(std::uint64_t block) {
    const std::size_t m = design_.block_size();
    if (re_.size() < m) {
      re_.resize(m);
      im_.resize(m);
    }
    if (have_inputs_ && block == input_block_) {
      return;
    }
    if (have_inputs_ && block == input_block_ + 1) {
      std::copy(inputs_.begin() + m, inputs_.end(), inputs_.begin());
      fetch(block * m + m, inputs_.data() + m);
    } else {
      inputs_.resize(2 * m);
      fetch(block * m, inputs_.data());
      fetch(block * m + m, inputs_.data() + m);
    }
    input_block_ = block;
    have_inputs_ = true;
  }

  /// One M-sample planar bulk fill at absolute stream offset
  /// \p first_sample, interleaved into \p out.
  void fetch(std::uint64_t first_sample, numeric::cdouble* out) {
    const std::size_t m = design_.block_size();
    random::fill_complex_gaussians_planar(
        branch_seed_, /*stream=*/0, design_.input_stream_variance_,
        first_sample, m, re_.data(), im_.data());
    for (std::size_t t = 0; t < m; ++t) {
      out[t] = numeric::cdouble(re_[t], im_[t]);
    }
  }

  /// Float clones of ensure_inputs/fetch over the float Philox tape
  /// (random::fill_complex_gaussians_planar_f32 at the same seed and
  /// absolute offsets — positionally pure, so the same shift fast path
  /// and seek behaviour hold).
  void ensure_inputs_f32(std::uint64_t block) {
    const std::size_t m = design_.block_size();
    if (re_f_.size() < m) {
      re_f_.resize(m);
      im_f_.resize(m);
    }
    if (have_inputs_f_ && block == input_block_f_) {
      return;
    }
    if (have_inputs_f_ && block == input_block_f_ + 1) {
      std::copy(inputs_f_.begin() + m, inputs_f_.end(), inputs_f_.begin());
      fetch_f32(block * m + m, inputs_f_.data() + m);
    } else {
      inputs_f_.resize(2 * m);
      fetch_f32(block * m, inputs_f_.data());
      fetch_f32(block * m + m, inputs_f_.data() + m);
    }
    input_block_f_ = block;
    have_inputs_f_ = true;
  }

  void fetch_f32(std::uint64_t first_sample, numeric::cfloat* out) {
    const std::size_t m = design_.block_size();
    random::fill_complex_gaussians_planar_f32(
        branch_seed_, /*stream=*/0, design_.input_stream_variance_,
        first_sample, m, re_f_.data(), im_f_.data());
    for (std::size_t t = 0; t < m; ++t) {
      out[t] = numeric::cfloat(re_f_[t], im_f_[t]);
    }
  }

  const BranchSourceDesign& design_;
  std::uint64_t branch_seed_;
  std::uint64_t pending_block_ = 0;
  numeric::CVector inputs_;  ///< [input_block_*M, input_block_*M + 2M)
  std::uint64_t input_block_ = 0;
  bool have_inputs_ = false;
  numeric::RVector re_;
  numeric::RVector im_;
  numeric::CVector scratch_;   ///< convolver workspace (2M)
  numeric::CVector spectrum_;  ///< Bluestein fallback: forward output
  numeric::CVector y_;         ///< Bluestein fallback: inverse output
  numeric::CVector bwork_;     ///< Bluestein fallback: inner scratch
  numeric::CVector tmp_;       ///< float fallback: double block to narrow
  numeric::CVectorF inputs_f_;  ///< float input window (2M)
  std::uint64_t input_block_f_ = 0;
  bool have_inputs_f_ = false;
  numeric::RVectorF re_f_;
  numeric::RVectorF im_f_;
  numeric::CVectorF scratch_f_;  ///< float convolver workspace (2M)
};

// --- design -----------------------------------------------------------------

BranchSourceDesign::BranchSourceDesign(StreamBackend backend, std::size_t m,
                                       double fm,
                                       double input_variance_per_dim,
                                       std::size_t overlap)
    : backend_(backend), branch_(m, fm, input_variance_per_dim) {
  switch (backend_) {
    case StreamBackend::IndependentBlock:
      RFADE_EXPECTS(overlap == 0,
                    "BranchSourceDesign: overlap is a WOLA parameter");
      block_size_ = m;
      break;
    case StreamBackend::WindowedOverlapAdd: {
      overlap_ = overlap == 0 ? m / 8 : overlap;
      RFADE_EXPECTS(overlap_ >= 1,
                    "BranchSourceDesign: WOLA overlap must be >= 1");
      RFADE_EXPECTS(overlap_ < m / 2,
                    "BranchSourceDesign: WOLA overlap must be < M/2");
      block_size_ = m - overlap_;
      fade_in_.resize(overlap_);
      fade_out_.resize(overlap_);
      for (std::size_t i = 0; i < overlap_; ++i) {
        // The historical StreamingFadingSource weights, bit-for-bit.
        const double w = static_cast<double>(i + 1) /
                         static_cast<double>(overlap_ + 1);
        fade_in_[i] = std::sqrt(w);
        fade_out_[i] = std::sqrt(1.0 - w);
      }
      // Float32 emission clone: the same weights narrowed once.
      fade_in_f_.resize(overlap_);
      fade_out_f_.resize(overlap_);
      for (std::size_t i = 0; i < overlap_; ++i) {
        fade_in_f_[i] = static_cast<float>(fade_in_[i]);
        fade_out_f_[i] = static_cast<float>(fade_out_[i]);
      }
      break;
    }
    case StreamBackend::OverlapSaveFir: {
      RFADE_EXPECTS(overlap == 0,
                    "BranchSourceDesign: overlap is a WOLA parameter");
      block_size_ = m;
      // Impulse response h = IDFT(F): DFT(h) = F, so h convolved with a
      // white stream of per-sample complex variance 2 sigma_orig^2 / M
      // reproduces the Fig. 2 block statistics — Parseval gives
      // E|y|^2 = (2 sigma_orig^2 / M) sum|h|^2 = sigma_g^2 (Eq. 19).
      numeric::CVector f(m);
      for (std::size_t k = 0; k < m; ++k) {
        f[k] = numeric::cdouble(branch_.filter().coefficients[k], 0.0);
      }
      const numeric::CVector h = fft::idft(f);
      // h is real (F is real and even) up to ~1e-16 IDFT rounding residue
      // in the imaginary part, which we drop: a real kernel is what lets
      // the I/Q tapes share one complex transform (fft::RealConvolver).
      // It peaks at l = 0 (mod M); center it so the *linear* FIR
      // autocorrelation matches the circular Eq. (17) law up to the small
      // tail wraparound, at the price of an irrelevant M/2 group delay.
      numeric::RVector centered(2 * m, 0.0);
      const std::size_t shift = m / 2;
      for (std::size_t k = 0; k < m; ++k) {
        centered[k] = h[(k + m - shift) % m].real();
      }
      input_stream_variance_ = 2.0 * input_variance_per_dim /
                               static_cast<double>(m);
      if (fft::is_power_of_two(2 * m)) {
        convolution_plan_ = std::make_shared<const fft::Pow2Plan>(2 * m);
        convolver_ =
            std::make_shared<const fft::RealConvolver>(convolution_plan_,
                                                       centered);
        kernel_spectrum_ = convolver_->kernel_spectrum();
        // Float32 emission clone: the kernel spectrum designed in double
        // and narrowed ONCE, with a float plan + convolver over it.  All
        // per-block float transforms use these; the design itself never
        // reruns in float.
        numeric::CVectorF spectrum_f(kernel_spectrum_.size());
        for (std::size_t k = 0; k < kernel_spectrum_.size(); ++k) {
          spectrum_f[k] =
              numeric::cfloat(static_cast<float>(kernel_spectrum_[k].real()),
                              static_cast<float>(kernel_spectrum_[k].imag()));
        }
        kernel_spectrum_f_ = spectrum_f;
        convolution_plan_f_ = std::make_shared<const fft::Pow2PlanF>(2 * m);
        convolver_f_ = std::make_shared<const fft::RealConvolverF>(
            convolution_plan_f_, std::move(spectrum_f));
      } else {
        numeric::CVector complexified(2 * m);
        for (std::size_t k = 0; k < 2 * m; ++k) {
          complexified[k] = numeric::cdouble(centered[k], 0.0);
        }
        kernel_spectrum_ = fft::dft(complexified);
        fallback_plan_ = std::make_shared<const fft::BluesteinPlan>(2 * m);
      }
      break;
    }
  }
}

std::size_t BranchSourceDesign::continuity_horizon() const noexcept {
  switch (backend_) {
    case StreamBackend::IndependentBlock:
      return 0;
    case StreamBackend::WindowedOverlapAdd:
      return overlap_;
    case StreamBackend::OverlapSaveFir:
      return std::numeric_limits<std::size_t>::max();
  }
  return 0;
}

std::unique_ptr<BranchSource> BranchSourceDesign::make_source(
    std::uint64_t branch_seed) const {
  switch (backend_) {
    case StreamBackend::IndependentBlock:
      return std::make_unique<IndependentBlockBranchSource>(*this);
    case StreamBackend::WindowedOverlapAdd:
      return std::make_unique<WolaBranchSource>(*this);
    case StreamBackend::OverlapSaveFir:
      return std::make_unique<OverlapSaveBranchSource>(*this, branch_seed);
  }
  return nullptr;
}

// --- batched overlap-save sweep ---------------------------------------------

/// One lane group of the batched sweep: up to 8 branches (one zmm register
/// of doubles) whose 2M-point input windows and transform buffers live in
/// planar point-major / lane-minor layout, re[p * lanes + b].
struct OverlapSaveBatch::LaneGroup {
  std::size_t first = 0;  ///< first branch (column) of this group
  std::size_t lanes = 0;  ///< branches in this group (<= 8)
  /// Cached input windows [input_block*M, input_block*M + 2M) per lane.
  numeric::RVector in_re;
  numeric::RVector in_im;
  /// Transform workspace (the batched FFTs run in place).
  numeric::RVector work_re;
  numeric::RVector work_im;
  /// One branch's M-sample bulk-Philox tape, scattered into the planar
  /// layout after each fill.
  numeric::RVector tape_re;
  numeric::RVector tape_im;
  /// Float32-mode clones of the planar buffers (only the active
  /// precision's buffers are ever allocated; a batch lives in one
  /// precision, so the input cache fields are shared).
  numeric::RVectorF in_re_f;
  numeric::RVectorF in_im_f;
  numeric::RVectorF work_re_f;
  numeric::RVectorF work_im_f;
  numeric::RVectorF tape_re_f;
  numeric::RVectorF tape_im_f;
  std::uint64_t input_block = 0;
  bool have_inputs = false;

  /// One M-sample bulk fill per lane at absolute stream offset
  /// \p first_sample, scattered into input rows [dest, dest + M) — the
  /// same fill_complex_gaussians_planar calls as the per-branch fetch,
  /// so the values are identical by construction.
  void fetch(const BranchSourceDesign& design, const std::uint64_t* seeds,
             std::uint64_t first_sample, std::size_t dest) {
    const std::size_t m = design.block_size();
    for (std::size_t b = 0; b < lanes; ++b) {
      random::fill_complex_gaussians_planar(
          seeds[first + b], /*stream=*/0, design.input_stream_variance_,
          first_sample, m, tape_re.data(), tape_im.data());
      for (std::size_t t = 0; t < m; ++t) {
        in_re[(dest + t) * lanes + b] = tape_re[t];
        in_im[(dest + t) * lanes + b] = tape_im[t];
      }
    }
  }

  /// Make the cached windows cover \p block, shifting the overlapping
  /// half when advancing sequentially and regenerating both otherwise.
  void ensure_inputs(const BranchSourceDesign& design,
                     const std::uint64_t* seeds, std::uint64_t block) {
    const std::size_t m = design.block_size();
    if (have_inputs && block == input_block) {
      return;
    }
    if (have_inputs && block == input_block + 1) {
      const std::size_t half = m * lanes;
      std::copy(in_re.begin() + half, in_re.end(), in_re.begin());
      std::copy(in_im.begin() + half, in_im.end(), in_im.begin());
      fetch(design, seeds, block * m + m, m);
    } else {
      fetch(design, seeds, block * m, 0);
      fetch(design, seeds, block * m + m, m);
    }
    input_block = block;
    have_inputs = true;
  }

  /// Batched convolution of every lane's window and extraction into the
  /// output columns: forward batch FFT, shared-spectrum multiply, inverse
  /// batch FFT, then w(l, first + b) = (wrap-free sample * 1/(2M)) *
  /// post_scale — the same two componentwise multiplies, in the same
  /// order, as the per-branch extract + scale_into_strided passes.
  void fill_into(const BranchSourceDesign& design, double post_scale,
                 numeric::CMatrix& w) {
    const std::size_t m = design.block_size();
    const std::size_t m2 = 2 * m;
    std::copy(in_re.begin(), in_re.end(), work_re.begin());
    std::copy(in_im.begin(), in_im.end(), work_im.begin());
    const fft::Pow2Plan& plan = *design.convolution_plan_;
    plan.transform_batched(work_re.data(), work_im.data(), lanes,
                           fft::Direction::Forward);
    fft::multiply_batched_pointwise(work_re.data(), work_im.data(), m2, lanes,
                                    design.kernel_spectrum_.data());
    plan.transform_batched(work_re.data(), work_im.data(), lanes,
                           fft::Direction::Inverse);
    const double scale = 1.0 / static_cast<double>(m2);
    for (std::size_t l = 0; l < m; ++l) {
      const double* row_re = work_re.data() + (m - 1 + l) * lanes;
      const double* row_im = work_im.data() + (m - 1 + l) * lanes;
      numeric::cdouble* out = &w(l, first);
      for (std::size_t b = 0; b < lanes; ++b) {
        const double ur = row_re[b] * scale;
        const double ui = row_im[b] * scale;
        out[b] = numeric::cdouble(ur * post_scale, ui * post_scale);
      }
    }
  }

  /// Float32 clones of fetch / ensure_inputs / fill_into: the same
  /// absolute-offset tape (fill_complex_gaussians_planar_f32 at the same
  /// seeds), the float plan's batched transforms, and the narrowed kernel
  /// spectrum — per-lane arithmetic mirrors the per-branch fill_f32
  /// exactly, so batched ≡ per-branch holds in float too.
  void fetch_f32(const BranchSourceDesign& design, const std::uint64_t* seeds,
                 std::uint64_t first_sample, std::size_t dest) {
    const std::size_t m = design.block_size();
    for (std::size_t b = 0; b < lanes; ++b) {
      random::fill_complex_gaussians_planar_f32(
          seeds[first + b], /*stream=*/0, design.input_stream_variance_,
          first_sample, m, tape_re_f.data(), tape_im_f.data());
      for (std::size_t t = 0; t < m; ++t) {
        in_re_f[(dest + t) * lanes + b] = tape_re_f[t];
        in_im_f[(dest + t) * lanes + b] = tape_im_f[t];
      }
    }
  }

  void ensure_inputs_f32(const BranchSourceDesign& design,
                         const std::uint64_t* seeds, std::uint64_t block) {
    const std::size_t m = design.block_size();
    if (have_inputs && block == input_block) {
      return;
    }
    if (have_inputs && block == input_block + 1) {
      const std::size_t half = m * lanes;
      std::copy(in_re_f.begin() + half, in_re_f.end(), in_re_f.begin());
      std::copy(in_im_f.begin() + half, in_im_f.end(), in_im_f.begin());
      fetch_f32(design, seeds, block * m + m, m);
    } else {
      fetch_f32(design, seeds, block * m, 0);
      fetch_f32(design, seeds, block * m + m, m);
    }
    input_block = block;
    have_inputs = true;
  }

  void fill_into_f32(const BranchSourceDesign& design, float post_scale,
                     numeric::CMatrixF& w) {
    const std::size_t m = design.block_size();
    const std::size_t m2 = 2 * m;
    std::copy(in_re_f.begin(), in_re_f.end(), work_re_f.begin());
    std::copy(in_im_f.begin(), in_im_f.end(), work_im_f.begin());
    const fft::Pow2PlanF& plan = *design.convolution_plan_f_;
    plan.transform_batched(work_re_f.data(), work_im_f.data(), lanes,
                           fft::Direction::Forward);
    fft::multiply_batched_pointwise(work_re_f.data(), work_im_f.data(), m2,
                                    lanes, design.kernel_spectrum_f_.data());
    plan.transform_batched(work_re_f.data(), work_im_f.data(), lanes,
                           fft::Direction::Inverse);
    const float scale = 1.0f / static_cast<float>(m2);
    for (std::size_t l = 0; l < m; ++l) {
      const float* row_re = work_re_f.data() + (m - 1 + l) * lanes;
      const float* row_im = work_im_f.data() + (m - 1 + l) * lanes;
      numeric::cfloat* out = &w(l, first);
      for (std::size_t b = 0; b < lanes; ++b) {
        const float ur = row_re[b] * scale;
        const float ui = row_im[b] * scale;
        out[b] = numeric::cfloat(ur * post_scale, ui * post_scale);
      }
    }
  }
};

OverlapSaveBatch::OverlapSaveBatch(
    std::shared_ptr<const BranchSourceDesign> design,
    std::vector<std::uint64_t> branch_seeds, bool float32)
    : design_(std::move(design)), branch_seeds_(std::move(branch_seeds)),
      float32_(float32) {
  RFADE_EXPECTS(design_ != nullptr && supports(*design_),
                "OverlapSaveBatch: design must be a power-of-two "
                "overlap-save backend");
  RFADE_EXPECTS(!branch_seeds_.empty(),
                "OverlapSaveBatch: need at least one branch seed");
  const std::size_t m = design_->block_size();
  // One zmm register per butterfly operand: 8 double lanes or 16 float.
  const std::size_t lane_width = float32_ ? 16 : 8;
  for (std::size_t first = 0; first < branch_seeds_.size();
       first += lane_width) {
    LaneGroup group;
    group.first = first;
    group.lanes = std::min(lane_width, branch_seeds_.size() - first);
    if (float32_) {
      group.in_re_f.resize(2 * m * group.lanes);
      group.in_im_f.resize(2 * m * group.lanes);
      group.work_re_f.resize(2 * m * group.lanes);
      group.work_im_f.resize(2 * m * group.lanes);
      group.tape_re_f.resize(m);
      group.tape_im_f.resize(m);
    } else {
      group.in_re.resize(2 * m * group.lanes);
      group.in_im.resize(2 * m * group.lanes);
      group.work_re.resize(2 * m * group.lanes);
      group.work_im.resize(2 * m * group.lanes);
      group.tape_re.resize(m);
      group.tape_im.resize(m);
    }
    groups_.push_back(std::move(group));
  }
}

OverlapSaveBatch::~OverlapSaveBatch() = default;

bool OverlapSaveBatch::supports(const BranchSourceDesign& design) {
  return design.backend() == StreamBackend::OverlapSaveFir &&
         design.convolver_ != nullptr;
}

std::size_t OverlapSaveBatch::branches() const noexcept {
  return branch_seeds_.size();
}

void OverlapSaveBatch::fill_block(std::uint64_t block_index, double post_scale,
                                  numeric::CMatrix& w, bool parallel) {
  RFADE_EXPECTS(!float32_, "OverlapSaveBatch: built for float32");
  RFADE_EXPECTS(w.rows() == design_->block_size() &&
                    w.cols() == branch_seeds_.size(),
                "OverlapSaveBatch: output matrix shape mismatch");
  // Lane groups are independent (disjoint state, disjoint output
  // columns): the group sweep parallelises exactly like the per-branch
  // fills, with identical output either way.
  support::parallel_for_chunked(
      groups_.size(),
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t g = begin; g < end; ++g) {
          groups_[g].ensure_inputs(*design_, branch_seeds_.data(),
                                   block_index);
          groups_[g].fill_into(*design_, post_scale, w);
        }
      },
      {/*chunk_size=*/1, /*serial=*/!parallel});
}

void OverlapSaveBatch::fill_block_f32(std::uint64_t block_index,
                                      float post_scale, numeric::CMatrixF& w,
                                      bool parallel) {
  RFADE_EXPECTS(float32_, "OverlapSaveBatch: not built for float32");
  RFADE_EXPECTS(w.rows() == design_->block_size() &&
                    w.cols() == branch_seeds_.size(),
                "OverlapSaveBatch: output matrix shape mismatch");
  support::parallel_for_chunked(
      groups_.size(),
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        for (std::size_t g = begin; g < end; ++g) {
          groups_[g].ensure_inputs_f32(*design_, branch_seeds_.data(),
                                       block_index);
          groups_[g].fill_into_f32(*design_, post_scale, w);
        }
      },
      {/*chunk_size=*/1, /*serial=*/!parallel});
}

void OverlapSaveBatch::reset() {
  for (LaneGroup& group : groups_) {
    group.have_inputs = false;
  }
}

std::uint64_t BranchSourceDesign::input_seed(std::uint64_t seed,
                                             std::size_t branch) {
  // splitmix64 over (seed, branch), salted so branch input streams are
  // disjoint from the cascade stage seeds (splitmix of
  // seed + (stage+1)*golden) and the TWDP phase seed for every plausible
  // branch count.
  std::uint64_t state = (seed ^ 0x0B5A9C1D2E3F4A5BULL) +
                        (static_cast<std::uint64_t>(branch) + 1) *
                            0x9E3779B97F4A7C15ULL;
  return random::splitmix64(state);
}

}  // namespace rfade::doppler
