#include "rfade/doppler/idft_generator.hpp"

#include <cmath>

#include "rfade/fft/fft.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::doppler {

IdftRayleighBranch::IdftRayleighBranch(std::size_t m, double fm,
                                       double input_variance_per_dim)
    : design_(young_beaulieu_filter(m, fm)),
      input_variance_per_dim_(input_variance_per_dim),
      output_variance_(post_filter_variance(design_, input_variance_per_dim)) {
  RFADE_EXPECTS(input_variance_per_dim > 0.0,
                "IdftRayleighBranch: input variance must be positive");
}

numeric::CVector IdftRayleighBranch::draw_spectrum(random::Rng& rng) const {
  const std::size_t m = design_.size();
  const double sigma_orig = std::sqrt(input_variance_per_dim_);
  numeric::CVector spectrum(m);
  for (std::size_t k = 0; k < m; ++k) {
    // U[k] = F[k] (A[k] - i B[k]); skip the zero-weight bins entirely.
    const double f = design_.coefficients[k];
    if (f == 0.0) {
      spectrum[k] = numeric::cdouble{};
      continue;
    }
    const double a = rng.gaussian(0.0, sigma_orig);
    const double b = rng.gaussian(0.0, sigma_orig);
    spectrum[k] = numeric::cdouble(f * a, -f * b);
  }
  return spectrum;
}

numeric::CVector IdftRayleighBranch::synthesize(
    const numeric::CVector& spectrum) const {
  RFADE_EXPECTS(spectrum.size() == design_.size(),
                "synthesize: spectrum length != IDFT size");
  return fft::idft(spectrum);  // u[l] = (1/M) sum_k U[k] e^{i 2 pi k l / M}
}

void IdftRayleighBranch::synthesize_into(const numeric::CVector& spectrum,
                                         numeric::CVector& out) const {
  RFADE_EXPECTS(spectrum.size() == design_.size(),
                "synthesize: spectrum length != IDFT size");
  if (fft::is_power_of_two(spectrum.size())) {
    // The exact fft::idft value sequence (copy, in-place inverse, 1/M
    // scale), but into the caller's warm buffer.
    out = spectrum;
    fft::fft_pow2_inplace(out, fft::Direction::Inverse);
    const double scale = 1.0 / static_cast<double>(out.size());
    for (numeric::cdouble& value : out) {
      value *= scale;
    }
    return;
  }
  out = fft::idft(spectrum);
}

numeric::CVector IdftRayleighBranch::generate_block(random::Rng& rng) const {
  return synthesize(draw_spectrum(rng));
}

numeric::RVector IdftRayleighBranch::generate_envelope_block(
    random::Rng& rng) const {
  const numeric::CVector block = generate_block(rng);
  numeric::RVector envelope(block.size());
  for (std::size_t l = 0; l < block.size(); ++l) {
    envelope[l] = std::abs(block[l]);
  }
  return envelope;
}

}  // namespace rfade::doppler
