#include "rfade/channel/spectral.hpp"

#include <cmath>

#include "rfade/special/bessel.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::channel {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

void validate(const SpectralScenario& s) {
  const std::size_t n = s.size();
  RFADE_EXPECTS(n >= 1, "SpectralScenario: need at least one carrier");
  RFADE_EXPECTS(s.delay_s.rows() == n && s.delay_s.cols() == n,
                "SpectralScenario: delay matrix must be N x N");
  RFADE_EXPECTS(s.max_doppler_hz >= 0.0,
                "SpectralScenario: Doppler must be non-negative");
  RFADE_EXPECTS(s.rms_delay_spread_s >= 0.0,
                "SpectralScenario: delay spread must be non-negative");
  RFADE_EXPECTS(s.gaussian_power > 0.0,
                "SpectralScenario: power must be positive");
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = k + 1; j < n; ++j) {
      RFADE_EXPECTS(std::abs(s.delay_s(k, j) - s.delay_s(j, k)) <= 1e-15,
                    "SpectralScenario: delay matrix must be symmetric");
    }
  }
}

}  // namespace

core::CrossCovariance spectral_cross_covariance(const SpectralScenario& s,
                                                std::size_t k,
                                                std::size_t j) {
  validate(s);
  RFADE_EXPECTS(k < s.size() && j < s.size() && k != j,
                "spectral_cross_covariance: bad pair");
  const double tau = s.delay_s(k, j);
  const double delta_omega = kTwoPi * (s.carrier_hz[k] - s.carrier_hz[j]);
  const double spread_term = delta_omega * s.rms_delay_spread_s;

  // Eq. (3): Rxx = sigma^2 J0(2 pi Fm tau) / (2 [1 + (dw sigma_tau)^2]).
  const double rxx = s.gaussian_power *
                     special::bessel_j0(kTwoPi * s.max_doppler_hz * tau) /
                     (2.0 * (1.0 + spread_term * spread_term));

  core::CrossCovariance c;
  c.rxx = rxx;
  c.ryy = rxx;              // Eq. (3): Ryy = Rxx
  c.rxy = -spread_term * rxx;  // Eq. (4)
  c.ryx = spread_term * rxx;   // Eq. (4): Ryx = -Rxy
  return c;
}

numeric::CMatrix spectral_covariance_matrix(const SpectralScenario& s) {
  validate(s);
  const std::size_t n = s.size();
  core::CovarianceBuilder builder(n);
  for (std::size_t j = 0; j < n; ++j) {
    builder.set_gaussian_power(j, s.gaussian_power);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = k + 1; j < n; ++j) {
      builder.set_cross_covariance(k, j, spectral_cross_covariance(s, k, j));
    }
  }
  return builder.build();
}

SpectralScenario paper_spectral_scenario() {
  SpectralScenario s;
  // GSM-900-like carriers, 200 kHz apart, f1 > f2 > f3 (Sec. 6).
  const double f1 = 900.0e6;
  s.carrier_hz = {f1, f1 - 200.0e3, f1 - 400.0e3};
  s.delay_s = numeric::RMatrix(3, 3, 0.0);
  s.delay_s(0, 1) = s.delay_s(1, 0) = 1.0e-3;  // tau_12 = 1 ms
  s.delay_s(1, 2) = s.delay_s(2, 1) = 3.0e-3;  // tau_23 = 3 ms
  s.delay_s(0, 2) = s.delay_s(2, 0) = 4.0e-3;  // tau_13 = 4 ms
  s.max_doppler_hz = 50.0;                     // Fm = 50 Hz (v = 60 km/h)
  s.rms_delay_spread_s = 1.0e-6;               // sigma_tau = 1 us
  s.gaussian_power = 1.0;
  return s;
}

numeric::CMatrix paper_eq22_matrix() {
  using numeric::cdouble;
  return numeric::CMatrix::from_rows(
      {{cdouble(1.0, 0.0), cdouble(0.3782, 0.4753), cdouble(0.0878, 0.2207)},
       {cdouble(0.3782, -0.4753), cdouble(1.0, 0.0), cdouble(0.3063, 0.3849)},
       {cdouble(0.0878, -0.2207), cdouble(0.3063, -0.3849), cdouble(1.0, 0.0)}});
}

}  // namespace rfade::channel
