#include "rfade/channel/mobility.hpp"

#include "rfade/support/contracts.hpp"

namespace rfade::channel {

namespace {
constexpr double kPi = 3.141592653589793238462643383279502884;
}

double wavelength_m(double carrier_hz) {
  RFADE_EXPECTS(carrier_hz > 0.0, "wavelength: carrier must be positive");
  return kSpeedOfLight / carrier_hz;
}

double max_doppler_hz(double carrier_hz, double speed_mps) {
  RFADE_EXPECTS(carrier_hz > 0.0, "max_doppler: carrier must be positive");
  RFADE_EXPECTS(speed_mps >= 0.0, "max_doppler: speed must be non-negative");
  return speed_mps * carrier_hz / kSpeedOfLight;
}

double max_doppler_hz_kmh(double carrier_hz, double speed_kmh) {
  return max_doppler_hz(carrier_hz, speed_kmh / 3.6);
}

double normalized_doppler(double max_doppler, double sample_rate_hz) {
  RFADE_EXPECTS(sample_rate_hz > 0.0,
                "normalized_doppler: sample rate must be positive");
  RFADE_EXPECTS(max_doppler >= 0.0,
                "normalized_doppler: Doppler must be non-negative");
  return max_doppler / sample_rate_hz;
}

double coherence_time_s(double max_doppler) {
  RFADE_EXPECTS(max_doppler > 0.0,
                "coherence_time: Doppler must be positive");
  return 9.0 / (16.0 * kPi * max_doppler);
}

double coherence_bandwidth_hz(double rms_delay_spread_s) {
  RFADE_EXPECTS(rms_delay_spread_s > 0.0,
                "coherence_bandwidth: delay spread must be positive");
  return 1.0 / (5.0 * rms_delay_spread_s);
}

}  // namespace rfade::channel
