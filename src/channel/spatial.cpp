#include "rfade/channel/spatial.hpp"

#include <cmath>

#include "rfade/special/bessel.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::channel {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

void validate(const SpatialScenario& s) {
  RFADE_EXPECTS(s.antenna_count >= 1, "SpatialScenario: need >= 1 antenna");
  RFADE_EXPECTS(s.spacing_wavelengths > 0.0,
                "SpatialScenario: spacing must be positive");
  RFADE_EXPECTS(s.angle_spread_rad >= 0.0 &&
                    s.angle_spread_rad <= 3.14159265358979324,
                "SpatialScenario: Delta must be in [0, pi]");
  RFADE_EXPECTS(std::abs(s.mean_angle_rad) <= 3.14159265358979324,
                "SpatialScenario: |Phi| must be <= pi");
  RFADE_EXPECTS(s.gaussian_power > 0.0,
                "SpatialScenario: power must be positive");
  RFADE_EXPECTS(s.max_series_terms >= 8,
                "SpatialScenario: series needs >= 8 terms");
}

/// sin(a)/a with the a -> 0 limit.
double sinc_ratio(double a) { return a == 0.0 ? 1.0 : std::sin(a) / a; }

}  // namespace

double spatial_rxx_normalized(const SpatialScenario& s, int separation) {
  validate(s);
  const double z = kTwoPi * s.spacing_wavelengths;
  const double zd = z * static_cast<double>(separation);
  double sum = special::bessel_j0(zd);
  // Terms die out once the Bessel order 2m exceeds |zd|; require a few
  // consecutive negligible terms before stopping.
  int quiet = 0;
  for (std::size_t m = 1; m <= s.max_series_terms; ++m) {
    const double order_arg = 2.0 * static_cast<double>(m);
    const double term = 2.0 *
                        special::bessel_jn(static_cast<int>(2 * m), zd) *
                        std::cos(order_arg * s.mean_angle_rad) *
                        sinc_ratio(order_arg * s.angle_spread_rad);
    sum += term;
    if (std::abs(term) < s.series_tolerance) {
      if (++quiet >= 3 && order_arg > std::abs(zd)) {
        break;
      }
    } else {
      quiet = 0;
    }
  }
  return sum;
}

double spatial_rxy_normalized(const SpatialScenario& s, int separation) {
  validate(s);
  const double z = kTwoPi * s.spacing_wavelengths;
  const double zd = z * static_cast<double>(separation);
  double sum = 0.0;
  int quiet = 0;
  for (std::size_t m = 0; m <= s.max_series_terms; ++m) {
    const double order_arg = 2.0 * static_cast<double>(m) + 1.0;
    const double term = 2.0 *
                        special::bessel_jn(static_cast<int>(2 * m + 1), zd) *
                        std::sin(order_arg * s.mean_angle_rad) *
                        sinc_ratio(order_arg * s.angle_spread_rad);
    sum += term;
    if (std::abs(term) < s.series_tolerance) {
      if (++quiet >= 3 && order_arg > std::abs(zd)) {
        break;
      }
    } else {
      quiet = 0;
    }
  }
  return sum;
}

core::CrossCovariance spatial_cross_covariance(const SpatialScenario& s,
                                               std::size_t k, std::size_t j) {
  validate(s);
  RFADE_EXPECTS(k < s.antenna_count && j < s.antenna_count && k != j,
                "spatial_cross_covariance: bad pair");
  const int separation = static_cast<int>(k) - static_cast<int>(j);
  const double half_power = 0.5 * s.gaussian_power;  // Eq. (7)
  core::CrossCovariance c;
  c.rxx = half_power * spatial_rxx_normalized(s, separation);
  c.ryy = c.rxx;  // Eq. (5): Ryy~ = Rxx~
  c.rxy = half_power * spatial_rxy_normalized(s, separation);
  c.ryx = -c.rxy;  // Eq. (6): Ryx~ = -Rxy~
  return c;
}

numeric::CMatrix spatial_covariance_matrix(const SpatialScenario& s) {
  validate(s);
  const std::size_t n = s.antenna_count;
  core::CovarianceBuilder builder(n);
  for (std::size_t j = 0; j < n; ++j) {
    builder.set_gaussian_power(j, s.gaussian_power);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = k + 1; j < n; ++j) {
      builder.set_cross_covariance(k, j, spatial_cross_covariance(s, k, j));
    }
  }
  return builder.build();
}

SpatialScenario paper_spatial_scenario() {
  SpatialScenario s;
  s.antenna_count = 3;
  s.spacing_wavelengths = 1.0;                  // D / lambda = 1
  s.angle_spread_rad = kTwoPi / 36.0;           // Delta = 10 degrees
  s.mean_angle_rad = 0.0;                       // Phi = 0
  s.gaussian_power = 1.0;
  return s;
}

numeric::CMatrix paper_eq23_matrix() {
  using numeric::cdouble;
  return numeric::CMatrix::from_rows(
      {{cdouble(1.0, 0.0), cdouble(0.8123, 0.0), cdouble(0.3730, 0.0)},
       {cdouble(0.8123, 0.0), cdouble(1.0, 0.0), cdouble(0.8123, 0.0)},
       {cdouble(0.3730, 0.0), cdouble(0.8123, 0.0), cdouble(1.0, 0.0)}});
}

}  // namespace rfade::channel
