#include "rfade/random/xoshiro.hpp"

namespace rfade::random {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

XoshiroEngine::XoshiroEngine(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed) {
  // Mix the stream id into the seed, then expand through SplitMix64 so the
  // four state words are never all-zero and decorrelated from the raw seed.
  std::uint64_t sm = seed ^ (stream * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL);
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t XoshiroEngine::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::unique_ptr<RandomEngine> XoshiroEngine::fork_stream(
    std::uint64_t stream_id) const {
  return std::make_unique<XoshiroEngine>(seed_, stream_id);
}

}  // namespace rfade::random
