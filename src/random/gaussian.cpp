#include <cmath>

#include "rfade/random/philox.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/random/xoshiro.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::random {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::unique_ptr<RandomEngine> make_engine(EngineKind kind, std::uint64_t seed,
                                          std::uint64_t stream) {
  if (kind == EngineKind::Xoshiro) {
    return std::make_unique<XoshiroEngine>(seed, stream);
  }
  return std::make_unique<PhiloxEngine>(seed, stream);
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : Rng(EngineKind::Philox, seed, stream) {}

Rng::Rng(EngineKind kind, std::uint64_t seed, std::uint64_t stream,
         GaussianAlgorithm algorithm)
    : engine_(make_engine(kind, seed, stream)), algorithm_(algorithm) {}

Rng::Rng(std::unique_ptr<RandomEngine> engine, GaussianAlgorithm algorithm)
    : engine_(std::move(engine)), algorithm_(algorithm) {}

double Rng::uniform01() { return to_unit_double(engine_->next_u64()); }

std::uint64_t Rng::next_u64() { return engine_->next_u64(); }

double Rng::gaussian() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  if (algorithm_ == GaussianAlgorithm::BoxMuller) {
    // u in (0,1] to keep log finite; v in [0,1).
    const double u = 1.0 - uniform01();
    const double v = uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u));
    const double angle = kTwoPi * v;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
  }
  // Marsaglia polar method.
  for (;;) {
    const double x = 2.0 * uniform01() - 1.0;
    const double y = 2.0 * uniform01() - 1.0;
    const double s = x * x + y * y;
    if (s >= 1.0 || s == 0.0) {
      continue;
    }
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = y * factor;
    has_cached_normal_ = true;
    return x * factor;
  }
}

double Rng::gaussian(double mean, double stddev) {
  RFADE_EXPECTS(stddev >= 0.0, "gaussian: stddev must be non-negative");
  return mean + stddev * gaussian();
}

std::complex<double> Rng::complex_gaussian(double variance) {
  RFADE_EXPECTS(variance >= 0.0, "complex_gaussian: variance must be >= 0");
  const double per_dimension_sigma = std::sqrt(0.5 * variance);
  // Draw both parts explicitly (not via the cache) so the real/imaginary
  // pairing is stable across GaussianAlgorithm choices.
  const double re = gaussian(0.0, per_dimension_sigma);
  const double im = gaussian(0.0, per_dimension_sigma);
  return {re, im};
}

Rng Rng::fork_stream(std::uint64_t stream_id) const {
  return Rng(engine_->fork_stream(stream_id), algorithm_);
}

const char* Rng::engine_name() const { return engine_->name(); }

Rng block_substream(std::uint64_t seed, std::uint64_t block_index,
                    GaussianAlgorithm algorithm) {
  return Rng(EngineKind::Philox, seed, block_index + 1, algorithm);
}

}  // namespace rfade::random
