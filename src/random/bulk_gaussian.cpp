// Built with relaxed-FP options (see CMakeLists.txt) so the split loops
// below vectorize against libmvec; everything integer-side is exact Philox.

#include "rfade/random/bulk_gaussian.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "rfade/random/engine.hpp"
#include "rfade/random/philox.hpp"
#include "rfade/support/simd.hpp"

namespace rfade::random {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Tile length: u/v/r scratch stays L1-resident while the vectorized
/// transcendental loops stream over it.
constexpr std::size_t kTile = 1024;

/// The Box-Muller transform over one tile, multiversioned so the libmvec
/// calls use the widest vector ISA the machine has (zmm log/sin/cos on
/// avx512f).  Cross-ISA the contract is ulp-level, not bitwise: libmvec's
/// vector transcendentals differ by a few ulp between the xmm/ymm/zmm
/// variants (the multiplies here have no adds, so FMA contraction is moot).
/// Within one process the ifunc resolves a single clone, so purity across
/// rfade's code paths stays exact.
RFADE_TARGET_CLONES_WIDE
void box_muller_tile(const double* __restrict u, const double* __restrict v,
                     double* __restrict radius, double sigma_per_dim,
                     std::size_t m, double* __restrict out_re,
                     double* __restrict out_im) {
  for (std::size_t t = 0; t < m; ++t) {
    radius[t] = sigma_per_dim * std::sqrt(-2.0 * std::log(u[t]));
  }
  for (std::size_t t = 0; t < m; ++t) {
    out_re[t] = radius[t] * std::cos(v[t]);
  }
  for (std::size_t t = 0; t < m; ++t) {
    out_im[t] = radius[t] * std::sin(v[t]);
  }
}

constexpr float kTwoPiF = 6.28318530717958647692f;

/// Float Box-Muller tile: identical loop structure to box_muller_tile at
/// twice the lanes per vector (zmm sincosf/logf on avx512f).  Same
/// cross-ISA caveat — ulp-level between clone widths, exact within one
/// process — and the padding in the caller keeps every real element on
/// the full-width path.
RFADE_TARGET_CLONES_WIDE
void box_muller_tile_f32(const float* __restrict u, const float* __restrict v,
                         float* __restrict radius, float sigma_per_dim,
                         std::size_t m, float* __restrict out_re,
                         float* __restrict out_im) {
  for (std::size_t t = 0; t < m; ++t) {
    radius[t] = sigma_per_dim * std::sqrt(-2.0f * std::log(u[t]));
  }
  for (std::size_t t = 0; t < m; ++t) {
    out_re[t] = radius[t] * std::cos(v[t]);
  }
  for (std::size_t t = 0; t < m; ++t) {
    out_im[t] = radius[t] * std::sin(v[t]);
  }
}

}  // namespace

void fill_complex_gaussians_planar(std::uint64_t seed, std::uint64_t stream,
                                   double variance, std::size_t count,
                                   double* re, double* im) {
  fill_complex_gaussians_planar(seed, stream, variance, /*first_sample=*/0,
                                count, re, im);
}

void fill_complex_gaussians_planar(std::uint64_t seed, std::uint64_t stream,
                                   double variance,
                                   std::uint64_t first_sample,
                                   std::size_t count, double* re, double* im) {
  const std::array<std::uint32_t, 2> key = {
      static_cast<std::uint32_t>(seed),
      static_cast<std::uint32_t>(seed >> 32)};
  const auto stream_lo = static_cast<std::uint32_t>(stream);
  const auto stream_hi = static_cast<std::uint32_t>(stream >> 32);
  const double sigma_per_dim = std::sqrt(0.5 * variance);

  // 64-byte-aligned tile-local buffers: the vectorized loops must never
  // peel for alignment or fall into a narrower-width epilogue, because
  // libmvec's xmm/ymm/zmm transcendentals differ in the low bits — an
  // element computed at a different width would break the positional
  // purity contract (the value at an absolute sample index must not
  // depend on how the enclosing fill calls are partitioned).
  alignas(64) double u[kTile];
  alignas(64) double v[kTile];
  alignas(64) double radius[kTile];
  alignas(64) double tile_re[kTile];
  alignas(64) double tile_im[kTile];

  for (std::size_t base = 0; base < count; base += kTile) {
    const std::size_t m = std::min(kTile, count - base);
    // Counter -> uniforms: block t gives u in (0, 1] (log-safe) and the
    // angle uniform v in [0, 1), exactly as Rng's Box-Muller consumes them.
    for (std::size_t t = 0; t < m; ++t) {
      const std::uint64_t index = first_sample + base + t;
      const std::array<std::uint32_t, 4> words = detail::philox_block(
          key, {static_cast<std::uint32_t>(index),
                static_cast<std::uint32_t>(index >> 32), stream_lo,
                stream_hi});
      const std::uint64_t bits01 =
          (static_cast<std::uint64_t>(words[1]) << 32) | words[0];
      const std::uint64_t bits23 =
          (static_cast<std::uint64_t>(words[3]) << 32) | words[2];
      u[t] = 1.0 - to_unit_double(bits01);
      v[t] = kTwoPi * to_unit_double(bits23);
    }
    // Pad the tile to the widest clone's vector width (8 doubles, one zmm)
    // with log-safe dummies, so every real element goes through the
    // full-width loop body — see the purity note above.
    const std::size_t padded = (m + 7) & ~std::size_t{7};
    for (std::size_t t = m; t < padded; ++t) {
      u[t] = 1.0;
      v[t] = 0.0;
    }
    // Split loops: each maps 1:1 onto a libmvec vector call.
    box_muller_tile(u, v, radius, sigma_per_dim, padded, tile_re, tile_im);
    std::copy(tile_re, tile_re + m, re + base);
    std::copy(tile_im, tile_im + m, im + base);
  }
}

void fill_complex_gaussians_planar_f32(std::uint64_t seed,
                                       std::uint64_t stream, double variance,
                                       std::size_t count, float* re,
                                       float* im) {
  fill_complex_gaussians_planar_f32(seed, stream, variance,
                                    /*first_sample=*/0, count, re, im);
}

void fill_complex_gaussians_planar_f32(std::uint64_t seed,
                                       std::uint64_t stream, double variance,
                                       std::uint64_t first_sample,
                                       std::size_t count, float* re,
                                       float* im) {
  const std::array<std::uint32_t, 2> key = {
      static_cast<std::uint32_t>(seed),
      static_cast<std::uint32_t>(seed >> 32)};
  const auto stream_lo = static_cast<std::uint32_t>(stream);
  const auto stream_hi = static_cast<std::uint32_t>(stream >> 32);
  const float sigma_per_dim =
      static_cast<float>(std::sqrt(0.5 * variance));

  alignas(64) float u[kTile];
  alignas(64) float v[kTile];
  alignas(64) float radius[kTile];
  alignas(64) float tile_re[kTile];
  alignas(64) float tile_im[kTile];

  for (std::size_t base = 0; base < count; base += kTile) {
    const std::size_t m = std::min(kTile, count - base);
    // Counter -> float uniforms: one 32-bit word per uniform.
    // (words[0] + 1) * 2^-32 lands in (0, 1] after rounding (log-safe,
    // the float analogue of 1 - to_unit_double), and words[2] * 2^-32
    // in [0, 1) scales to the angle.
    for (std::size_t t = 0; t < m; ++t) {
      const std::uint64_t index = first_sample + base + t;
      const std::array<std::uint32_t, 4> words = detail::philox_block(
          key, {static_cast<std::uint32_t>(index),
                static_cast<std::uint32_t>(index >> 32), stream_lo,
                stream_hi});
      u[t] = static_cast<float>(static_cast<std::uint64_t>(words[0]) + 1) *
             0x1p-32f;
      v[t] = kTwoPiF * (static_cast<float>(words[2]) * 0x1p-32f);
    }
    // Pad to the widest clone's float vector width (16 floats, one zmm)
    // with log-safe dummies — same positional-purity argument as the
    // double fill.
    const std::size_t padded = (m + 15) & ~std::size_t{15};
    for (std::size_t t = m; t < padded; ++t) {
      u[t] = 1.0f;
      v[t] = 0.0f;
    }
    box_muller_tile_f32(u, v, radius, sigma_per_dim, padded, tile_re,
                        tile_im);
    std::copy(tile_re, tile_re + m, re + base);
    std::copy(tile_im, tile_im + m, im + base);
  }
}

}  // namespace rfade::random
