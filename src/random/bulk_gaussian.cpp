// Built with relaxed-FP options (see CMakeLists.txt) so the split loops
// below vectorize against libmvec; everything integer-side is exact Philox.

#include "rfade/random/bulk_gaussian.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "rfade/random/engine.hpp"
#include "rfade/random/philox.hpp"
#include "rfade/support/simd.hpp"

namespace rfade::random {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Tile length: u/v/r scratch stays L1-resident while the vectorized
/// transcendental loops stream over it.
constexpr std::size_t kTile = 1024;

/// The Box-Muller transform over one tile, multiversioned so the libmvec
/// calls use the widest vector ISA the machine has (zmm log/sin/cos on
/// avx512f).  Cross-ISA the contract is ulp-level, not bitwise: libmvec's
/// vector transcendentals differ by a few ulp between the xmm/ymm/zmm
/// variants (the multiplies here have no adds, so FMA contraction is moot).
/// Within one process the ifunc resolves a single clone, so purity across
/// rfade's code paths stays exact.
RFADE_TARGET_CLONES_WIDE
void box_muller_tile(const double* __restrict u, const double* __restrict v,
                     double* __restrict radius, double sigma_per_dim,
                     std::size_t m, double* __restrict out_re,
                     double* __restrict out_im) {
  for (std::size_t t = 0; t < m; ++t) {
    radius[t] = sigma_per_dim * std::sqrt(-2.0 * std::log(u[t]));
  }
  for (std::size_t t = 0; t < m; ++t) {
    out_re[t] = radius[t] * std::cos(v[t]);
  }
  for (std::size_t t = 0; t < m; ++t) {
    out_im[t] = radius[t] * std::sin(v[t]);
  }
}

}  // namespace

void fill_complex_gaussians_planar(std::uint64_t seed, std::uint64_t stream,
                                   double variance, std::size_t count,
                                   double* re, double* im) {
  fill_complex_gaussians_planar(seed, stream, variance, /*first_sample=*/0,
                                count, re, im);
}

void fill_complex_gaussians_planar(std::uint64_t seed, std::uint64_t stream,
                                   double variance,
                                   std::uint64_t first_sample,
                                   std::size_t count, double* re, double* im) {
  const std::array<std::uint32_t, 2> key = {
      static_cast<std::uint32_t>(seed),
      static_cast<std::uint32_t>(seed >> 32)};
  const auto stream_lo = static_cast<std::uint32_t>(stream);
  const auto stream_hi = static_cast<std::uint32_t>(stream >> 32);
  const double sigma_per_dim = std::sqrt(0.5 * variance);

  // 64-byte-aligned tile-local buffers: the vectorized loops must never
  // peel for alignment or fall into a narrower-width epilogue, because
  // libmvec's xmm/ymm/zmm transcendentals differ in the low bits — an
  // element computed at a different width would break the positional
  // purity contract (the value at an absolute sample index must not
  // depend on how the enclosing fill calls are partitioned).
  alignas(64) double u[kTile];
  alignas(64) double v[kTile];
  alignas(64) double radius[kTile];
  alignas(64) double tile_re[kTile];
  alignas(64) double tile_im[kTile];

  for (std::size_t base = 0; base < count; base += kTile) {
    const std::size_t m = std::min(kTile, count - base);
    // Counter -> uniforms: block t gives u in (0, 1] (log-safe) and the
    // angle uniform v in [0, 1), exactly as Rng's Box-Muller consumes them.
    for (std::size_t t = 0; t < m; ++t) {
      const std::uint64_t index = first_sample + base + t;
      const std::array<std::uint32_t, 4> words = detail::philox_block(
          key, {static_cast<std::uint32_t>(index),
                static_cast<std::uint32_t>(index >> 32), stream_lo,
                stream_hi});
      const std::uint64_t bits01 =
          (static_cast<std::uint64_t>(words[1]) << 32) | words[0];
      const std::uint64_t bits23 =
          (static_cast<std::uint64_t>(words[3]) << 32) | words[2];
      u[t] = 1.0 - to_unit_double(bits01);
      v[t] = kTwoPi * to_unit_double(bits23);
    }
    // Pad the tile to the widest clone's vector width (8 doubles, one zmm)
    // with log-safe dummies, so every real element goes through the
    // full-width loop body — see the purity note above.
    const std::size_t padded = (m + 7) & ~std::size_t{7};
    for (std::size_t t = m; t < padded; ++t) {
      u[t] = 1.0;
      v[t] = 0.0;
    }
    // Split loops: each maps 1:1 onto a libmvec vector call.
    box_muller_tile(u, v, radius, sigma_per_dim, padded, tile_re, tile_im);
    std::copy(tile_re, tile_re + m, re + base);
    std::copy(tile_im, tile_im + m, im + base);
  }
}

}  // namespace rfade::random
