#include "rfade/random/philox.hpp"

namespace rfade::random {

namespace {

constexpr std::uint32_t kMult0 = 0xD2511F53u;
constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void single_round(std::array<std::uint32_t, 4>& ctr,
                         const std::array<std::uint32_t, 2>& key) {
  const std::uint64_t product0 =
      static_cast<std::uint64_t>(kMult0) * ctr[0];
  const std::uint64_t product1 =
      static_cast<std::uint64_t>(kMult1) * ctr[2];
  const auto hi0 = static_cast<std::uint32_t>(product0 >> 32);
  const auto lo0 = static_cast<std::uint32_t>(product0);
  const auto hi1 = static_cast<std::uint32_t>(product1 >> 32);
  const auto lo1 = static_cast<std::uint32_t>(product1);
  ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

std::array<std::uint32_t, 4> PhiloxEngine::block(
    std::array<std::uint32_t, 2> key, std::array<std::uint32_t, 4> counter) {
  for (int round = 0; round < 10; ++round) {
    if (round > 0) {
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    single_round(counter, key);
  }
  return counter;
}

PhiloxEngine::PhiloxEngine(std::uint64_t seed, std::uint64_t stream) {
  key_ = {static_cast<std::uint32_t>(seed),
          static_cast<std::uint32_t>(seed >> 32)};
  stream_words_ = {static_cast<std::uint32_t>(stream),
                   static_cast<std::uint32_t>(stream >> 32)};
}

void PhiloxEngine::refill() {
  const std::array<std::uint32_t, 4> counter = {
      static_cast<std::uint32_t>(block_index_),
      static_cast<std::uint32_t>(block_index_ >> 32), stream_words_[0],
      stream_words_[1]};
  buffer_ = block(key_, counter);
  ++block_index_;
  buffer_pos_ = 0;
}

std::uint64_t PhiloxEngine::next_u64() {
  if (buffer_pos_ + 2 > 4) {
    refill();
  }
  const std::uint64_t lo = buffer_[buffer_pos_];
  const std::uint64_t hi = buffer_[buffer_pos_ + 1];
  buffer_pos_ += 2;
  return (hi << 32) | lo;
}

std::unique_ptr<RandomEngine> PhiloxEngine::fork_stream(
    std::uint64_t stream_id) const {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(key_[1]) << 32) | key_[0];
  return std::make_unique<PhiloxEngine>(seed, stream_id);
}

void PhiloxEngine::seek(std::uint64_t block_index) {
  block_index_ = block_index;
  buffer_pos_ = 4;  // force refill
}

}  // namespace rfade::random
