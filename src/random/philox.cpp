#include "rfade/random/philox.hpp"

namespace rfade::random {

std::array<std::uint32_t, 4> PhiloxEngine::block(
    std::array<std::uint32_t, 2> key, std::array<std::uint32_t, 4> counter) {
  return detail::philox_block(key, counter);
}

PhiloxEngine::PhiloxEngine(std::uint64_t seed, std::uint64_t stream) {
  key_ = {static_cast<std::uint32_t>(seed),
          static_cast<std::uint32_t>(seed >> 32)};
  stream_words_ = {static_cast<std::uint32_t>(stream),
                   static_cast<std::uint32_t>(stream >> 32)};
}

void PhiloxEngine::refill() {
  const std::array<std::uint32_t, 4> counter = {
      static_cast<std::uint32_t>(block_index_),
      static_cast<std::uint32_t>(block_index_ >> 32), stream_words_[0],
      stream_words_[1]};
  buffer_ = block(key_, counter);
  ++block_index_;
  buffer_pos_ = 0;
}

std::uint64_t PhiloxEngine::next_u64() {
  if (buffer_pos_ + 2 > 4) {
    refill();
  }
  const std::uint64_t lo = buffer_[buffer_pos_];
  const std::uint64_t hi = buffer_[buffer_pos_ + 1];
  buffer_pos_ += 2;
  return (hi << 32) | lo;
}

std::unique_ptr<RandomEngine> PhiloxEngine::fork_stream(
    std::uint64_t stream_id) const {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(key_[1]) << 32) | key_[0];
  return std::make_unique<PhiloxEngine>(seed, stream_id);
}

void PhiloxEngine::seek(std::uint64_t block_index) {
  block_index_ = block_index;
  buffer_pos_ = 4;  // force refill
}

}  // namespace rfade::random
