#include "rfade/metrics/accumulators.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <string>

#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"

namespace rfade::metrics {

using numeric::cdouble;

namespace {

/// The one place a lag product is formed: accumulate and merge both call
/// this, so seam-spanning products are computed from the identical
/// doubles with the identical expression — the bit-exactness hinge.
inline cdouble lag_product(cdouble later, cdouble earlier) {
  return later * std::conj(earlier);
}

std::vector<std::size_t> canonical_lags(std::vector<std::size_t> lags,
                                        bool require_positive,
                                        bool include_zero) {
  std::sort(lags.begin(), lags.end());
  lags.erase(std::unique(lags.begin(), lags.end()), lags.end());
  if (!lags.empty() && lags.front() == 0) {
    lags.erase(lags.begin());
  }
  if (require_positive) {
    RFADE_EXPECTS(!lags.empty(), "metrics: need at least one positive lag");
  }
  if (include_zero) {
    lags.insert(lags.begin(), 0);
  }
  return lags;
}

}  // namespace

// --- LevelCrossingAccumulator ------------------------------------------------

LevelCrossingAccumulator::LevelCrossingAccumulator(
    std::size_t dimension, std::vector<double> thresholds,
    std::vector<double> branch_rms)
    : dimension_(dimension), thresholds_(std::move(thresholds)) {
  RFADE_EXPECTS(dimension_ >= 1, "LevelCrossingAccumulator: dimension >= 1");
  RFADE_EXPECTS(!thresholds_.empty(),
                "LevelCrossingAccumulator: need at least one threshold");
  if (branch_rms.size() != dimension_) {
    throw DimensionError(
        "LevelCrossingAccumulator: branch_rms size must equal dimension");
  }
  for (const double rho : thresholds_) {
    RFADE_EXPECTS(rho > 0.0 && std::isfinite(rho),
                  "LevelCrossingAccumulator: thresholds must be finite > 0");
  }
  for (const double rms : branch_rms) {
    RFADE_EXPECTS(rms > 0.0 && std::isfinite(rms),
                  "LevelCrossingAccumulator: branch rms must be finite > 0");
  }
  levels_.resize(dimension_ * thresholds_.size());
  for (std::size_t j = 0; j < dimension_; ++j) {
    for (std::size_t t = 0; t < thresholds_.size(); ++t) {
      levels_[j * thresholds_.size() + t] = thresholds_[t] * branch_rms[j];
    }
  }
  cells_.resize(dimension_ * thresholds_.size());
}

void LevelCrossingAccumulator::fold(std::size_t branch, double envelope) {
  const std::size_t base = branch * thresholds_.size();
  for (std::size_t t = 0; t < thresholds_.size(); ++t) {
    Cell& cell = cells_[base + t];
    if (envelope < levels_[base + t]) {
      ++cell.below;
      ++cell.run;
    } else {
      if (cell.run > 0) {
        ++cell.crossings;  // previous sample was below: an up-crossing
        if (cell.seen_above) {
          cell.longest = std::max(cell.longest, cell.run);
        } else {
          cell.leading = cell.run;  // edge run: censored, not a fade
        }
      }
      cell.seen_above = true;
      cell.run = 0;
    }
  }
}

void LevelCrossingAccumulator::accumulate(const numeric::CMatrix& block) {
  if (block.cols() != dimension_) {
    throw DimensionError("LevelCrossingAccumulator: block has " +
                         std::to_string(block.cols()) + " branches, expected " +
                         std::to_string(dimension_));
  }
  for (std::size_t r = 0; r < block.rows(); ++r) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      fold(j, std::abs(block(r, j)));
    }
    ++count_;
  }
}

void LevelCrossingAccumulator::accumulate(const numeric::CMatrixF& block) {
  if (block.cols() != dimension_) {
    throw DimensionError("LevelCrossingAccumulator: block has " +
                         std::to_string(block.cols()) + " branches, expected " +
                         std::to_string(dimension_));
  }
  for (std::size_t r = 0; r < block.rows(); ++r) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      const cdouble z(static_cast<double>(block(r, j).real()),
                      static_cast<double>(block(r, j).imag()));
      fold(j, std::abs(z));
    }
    ++count_;
  }
}

void LevelCrossingAccumulator::accumulate_envelopes(
    const numeric::RMatrix& envelopes) {
  if (envelopes.cols() != dimension_) {
    throw DimensionError("LevelCrossingAccumulator: envelope block has " +
                         std::to_string(envelopes.cols()) +
                         " branches, expected " + std::to_string(dimension_));
  }
  for (std::size_t r = 0; r < envelopes.rows(); ++r) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      fold(j, envelopes(r, j));
    }
    ++count_;
  }
}

void LevelCrossingAccumulator::merge(const LevelCrossingAccumulator& other) {
  if (other.dimension_ != dimension_ || other.thresholds_ != thresholds_ ||
      other.levels_ != levels_) {
    throw DimensionError(
        "LevelCrossingAccumulator::merge: mismatched configuration");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    cells_ = other.cells_;
    count_ = other.count_;
    return;
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Cell& l = cells_[i];
    const Cell& r = other.cells_[i];
    Cell m;
    m.below = l.below + r.below;
    // Seam up-crossing: this segment ends below and the next starts
    // at-or-above — the transition a single pass would have counted at
    // other's first sample.
    const bool seam_crossing = l.run > 0 && r.seen_above && r.leading == 0;
    m.crossings = l.crossings + r.crossings + (seam_crossing ? 1 : 0);
    if (!l.seen_above && !r.seen_above) {
      // Entire combined segment below: one open run, nothing closed.
      m.seen_above = false;
      m.run = l.run + r.run;
    } else if (!l.seen_above) {
      // This side all below: it extends other's leading (censored) run.
      m.seen_above = true;
      m.leading = l.run + r.leading;
      m.run = r.run;
      m.longest = r.longest;
    } else if (!r.seen_above) {
      // Other side all below: it extends this side's open trailing run.
      m.seen_above = true;
      m.leading = l.leading;
      m.run = l.run + r.run;
      m.longest = l.longest;
    } else {
      // The seam joins this side's trailing run with other's leading run
      // into a fade closed on both sides (above samples exist on each
      // side), exactly as the single pass would have measured it.
      m.seen_above = true;
      m.leading = l.leading;
      m.run = r.run;
      m.longest = std::max({l.longest, r.longest, l.run + r.leading});
    }
    l = m;
  }
  count_ += other.count_;
}

LevelCrossingStats LevelCrossingAccumulator::finalize(
    std::size_t branch, std::size_t threshold_index) const {
  RFADE_EXPECTS(branch < dimension_, "LevelCrossingAccumulator: branch oob");
  RFADE_EXPECTS(threshold_index < thresholds_.size(),
                "LevelCrossingAccumulator: threshold index oob");
  if (count_ == 0) {
    throw ValueError("LevelCrossingAccumulator: no samples accumulated");
  }
  const Cell& cell = cells_[branch * thresholds_.size() + threshold_index];
  LevelCrossingStats stats;
  stats.samples = count_;
  stats.samples_below = cell.below;
  stats.up_crossings = cell.crossings;
  stats.longest_fade = cell.longest;
  stats.lcr_per_sample =
      static_cast<double>(cell.crossings) / static_cast<double>(count_);
  stats.afd_samples = cell.crossings == 0
                          ? 0.0
                          : static_cast<double>(cell.below) /
                                static_cast<double>(cell.crossings);
  return stats;
}

// --- AcfAccumulator ----------------------------------------------------------

AcfAccumulator::AcfAccumulator(std::size_t dimension,
                               std::vector<std::size_t> lags)
    : dimension_(dimension),
      lags_(canonical_lags(std::move(lags), /*require_positive=*/true,
                           /*include_zero=*/true)),
      max_lag_(lags_.back()) {
  RFADE_EXPECTS(dimension_ >= 1, "AcfAccumulator: dimension >= 1");
  re_.resize(dimension_ * lags_.size());
  im_.resize(dimension_ * lags_.size());
  head_.resize(dimension_);
  ring_.assign(dimension_, std::vector<cdouble>(max_lag_));
  for (auto& head : head_) head.reserve(max_lag_);
}

std::size_t AcfAccumulator::lag_index(std::size_t lag) const {
  const auto it = std::lower_bound(lags_.begin(), lags_.end(), lag);
  if (it == lags_.end() || *it != lag) {
    throw ValueError("AcfAccumulator: lag " + std::to_string(lag) +
                     " is not tracked");
  }
  return static_cast<std::size_t>(it - lags_.begin());
}

void AcfAccumulator::accumulate(const numeric::CMatrix& block) {
  if (block.cols() != dimension_) {
    throw DimensionError("AcfAccumulator: block has " +
                         std::to_string(block.cols()) + " branches, expected " +
                         std::to_string(dimension_));
  }
  for (std::size_t r = 0; r < block.rows(); ++r) {
    const std::uint64_t pos = count_;
    for (std::size_t j = 0; j < dimension_; ++j) {
      const cdouble z = block(r, j);
      const std::size_t base = j * lags_.size();
      for (std::size_t k = 0; k < lags_.size(); ++k) {
        const std::size_t d = lags_[k];
        if (pos < d) break;  // lags sorted: later ones unreachable too
        const cdouble earlier =
            d == 0 ? z : ring_[j][(pos - d) % max_lag_];
        const cdouble p = lag_product(z, earlier);
        re_[base + k].add(p.real());
        im_[base + k].add(p.imag());
      }
      ring_[j][pos % max_lag_] = z;
      if (head_[j].size() < max_lag_) head_[j].push_back(z);
    }
    ++count_;
  }
}

void AcfAccumulator::accumulate(const numeric::CMatrixF& block) {
  if (block.cols() != dimension_) {
    throw DimensionError("AcfAccumulator: block has " +
                         std::to_string(block.cols()) + " branches, expected " +
                         std::to_string(dimension_));
  }
  // Widen once per sample; everything downstream is the double path, so
  // float shards satisfy the same bit-exact merge contract.
  numeric::CMatrix wide(block.rows(), block.cols());
  for (std::size_t r = 0; r < block.rows(); ++r) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      wide(r, j) = cdouble(static_cast<double>(block(r, j).real()),
                           static_cast<double>(block(r, j).imag()));
    }
  }
  accumulate(wide);
}

void AcfAccumulator::merge(const AcfAccumulator& other) {
  if (other.dimension_ != dimension_ || other.lags_ != lags_) {
    throw DimensionError("AcfAccumulator::merge: mismatched configuration");
  }
  if (other.count_ == 0) return;
  const std::uint64_t n_left = count_;
  const std::uint64_t n_right = other.count_;
  for (std::size_t j = 0; j < dimension_; ++j) {
    const std::size_t base = j * lags_.size();
    // Within-shard sums: ExactSum merge is exactly order-invariant.
    for (std::size_t k = 0; k < lags_.size(); ++k) {
      re_[base + k].merge(other.re_[base + k]);
      im_[base + k].merge(other.im_[base + k]);
    }
    // Seam-spanning pairs: later sample at other's local index p (in its
    // head), earlier at this side's global index n_left + p - d (in the
    // tail ring).  Identical doubles, identical product expression —
    // the multiset of accumulated terms equals the single pass's.
    for (std::size_t k = 1; k < lags_.size(); ++k) {
      const std::uint64_t d = lags_[k];
      const std::uint64_t p_begin = d > n_left ? d - n_left : 0;
      const std::uint64_t p_end = std::min<std::uint64_t>(d, n_right);
      for (std::uint64_t p = p_begin; p < p_end; ++p) {
        const cdouble later = other.head_[j][static_cast<std::size_t>(p)];
        const std::uint64_t q = n_left + p - d;
        const cdouble earlier = ring_[j][q % max_lag_];
        const cdouble prod = lag_product(later, earlier);
        re_[base + k].add(prod.real());
        im_[base + k].add(prod.imag());
      }
    }
    // Boundary state of the combined segment: head extends with other's
    // first samples while short; the ring re-keys other's tail samples
    // to their combined-stream indices.
    while (head_[j].size() < max_lag_ &&
           head_[j].size() < n_left + other.head_[j].size()) {
      head_[j].push_back(
          other.head_[j][head_[j].size() - static_cast<std::size_t>(n_left)]);
    }
    std::vector<cdouble> ring(max_lag_);
    const std::uint64_t total = n_left + n_right;
    const std::uint64_t q_begin = total > max_lag_ ? total - max_lag_ : 0;
    for (std::uint64_t q = q_begin; q < total; ++q) {
      const cdouble value = q >= n_left
                                ? other.ring_[j][(q - n_left) % max_lag_]
                                : ring_[j][q % max_lag_];
      ring[q % max_lag_] = value;
    }
    ring_[j] = std::move(ring);
  }
  count_ = n_left + n_right;
}

cdouble AcfAccumulator::correlation_sum(std::size_t branch,
                                        std::size_t lag) const {
  RFADE_EXPECTS(branch < dimension_, "AcfAccumulator: branch oob");
  const std::size_t k = lag_index(lag);
  return {re_[branch * lags_.size() + k].value(),
          im_[branch * lags_.size() + k].value()};
}

cdouble AcfAccumulator::autocorrelation(std::size_t branch,
                                        std::size_t lag) const {
  RFADE_EXPECTS(branch < dimension_, "AcfAccumulator: branch oob");
  const std::size_t k = lag_index(lag);
  if (count_ <= lag) {
    throw ValueError("AcfAccumulator: no pairs at lag " + std::to_string(lag));
  }
  const std::size_t base = branch * lags_.size();
  const double power = re_[base].value() / static_cast<double>(count_);
  if (!(power > 0.0)) {
    throw ValueError("AcfAccumulator: zero-power trace");
  }
  const double pairs = static_cast<double>(count_ - lag);
  return {re_[base + k].value() / pairs / power,
          im_[base + k].value() / pairs / power};
}

// --- MutualInformationAccumulator --------------------------------------------

MutualInformationAccumulator::MutualInformationAccumulator(
    std::size_t dimension, double snr_linear, std::vector<double> branch_power,
    std::vector<std::size_t> lags)
    : dimension_(dimension),
      snr_(snr_linear),
      lags_(canonical_lags(std::move(lags), /*require_positive=*/false,
                           /*include_zero=*/false)),
      max_lag_(lags_.empty() ? 0 : lags_.back()) {
  RFADE_EXPECTS(dimension_ >= 1, "MutualInformationAccumulator: dimension >= 1");
  RFADE_EXPECTS(snr_ > 0.0 && std::isfinite(snr_),
                "MutualInformationAccumulator: snr must be finite > 0");
  if (branch_power.size() != dimension_) {
    throw DimensionError(
        "MutualInformationAccumulator: branch_power size must equal dimension");
  }
  inv_power_.resize(dimension_);
  for (std::size_t j = 0; j < dimension_; ++j) {
    RFADE_EXPECTS(branch_power[j] > 0.0 && std::isfinite(branch_power[j]),
                  "MutualInformationAccumulator: branch power must be > 0");
    inv_power_[j] = snr_ / branch_power[j];
  }
  sum_.resize(dimension_);
  sum_sq_.resize(dimension_);
  lag_sum_.resize(dimension_ * lags_.size());
  head_.resize(dimension_);
  ring_.assign(dimension_, std::vector<double>(max_lag_));
  for (auto& head : head_) head.reserve(max_lag_);
}

std::size_t MutualInformationAccumulator::lag_index(std::size_t lag) const {
  const auto it = std::lower_bound(lags_.begin(), lags_.end(), lag);
  if (it == lags_.end() || *it != lag) {
    throw ValueError("MutualInformationAccumulator: lag " +
                     std::to_string(lag) + " is not tracked");
  }
  return static_cast<std::size_t>(it - lags_.begin());
}

void MutualInformationAccumulator::fold(std::size_t branch,
                                        double information) {
  sum_[branch].add(information);
  sum_sq_[branch].add(information * information);
  const std::uint64_t pos = count_;  // caller increments after the row
  const std::size_t base = branch * lags_.size();
  for (std::size_t k = 0; k < lags_.size(); ++k) {
    const std::size_t d = lags_[k];
    if (pos < d) break;
    const double earlier = ring_[branch][(pos - d) % max_lag_];
    lag_sum_[base + k].add(information * earlier);
  }
  if (max_lag_ > 0) {
    ring_[branch][pos % max_lag_] = information;
    if (head_[branch].size() < max_lag_) head_[branch].push_back(information);
  }
}

void MutualInformationAccumulator::accumulate(const numeric::CMatrix& block) {
  if (block.cols() != dimension_) {
    throw DimensionError("MutualInformationAccumulator: block has " +
                         std::to_string(block.cols()) + " branches, expected " +
                         std::to_string(dimension_));
  }
  for (std::size_t r = 0; r < block.rows(); ++r) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      const double power = std::norm(block(r, j));
      fold(j, std::log2(1.0 + inv_power_[j] * power));
    }
    ++count_;
  }
}

void MutualInformationAccumulator::accumulate(const numeric::CMatrixF& block) {
  if (block.cols() != dimension_) {
    throw DimensionError("MutualInformationAccumulator: block has " +
                         std::to_string(block.cols()) + " branches, expected " +
                         std::to_string(dimension_));
  }
  for (std::size_t r = 0; r < block.rows(); ++r) {
    for (std::size_t j = 0; j < dimension_; ++j) {
      const cdouble z(static_cast<double>(block(r, j).real()),
                      static_cast<double>(block(r, j).imag()));
      fold(j, std::log2(1.0 + inv_power_[j] * std::norm(z)));
    }
    ++count_;
  }
}

void MutualInformationAccumulator::merge(
    const MutualInformationAccumulator& other) {
  if (other.dimension_ != dimension_ || other.lags_ != lags_ ||
      other.snr_ != snr_ || other.inv_power_ != inv_power_) {
    throw DimensionError(
        "MutualInformationAccumulator::merge: mismatched configuration");
  }
  if (other.count_ == 0) return;
  const std::uint64_t n_left = count_;
  const std::uint64_t n_right = other.count_;
  for (std::size_t j = 0; j < dimension_; ++j) {
    sum_[j].merge(other.sum_[j]);
    sum_sq_[j].merge(other.sum_sq_[j]);
    const std::size_t base = j * lags_.size();
    for (std::size_t k = 0; k < lags_.size(); ++k) {
      lag_sum_[base + k].merge(other.lag_sum_[base + k]);
      // Seam-spanning lag products, same index algebra as AcfAccumulator.
      const std::uint64_t d = lags_[k];
      const std::uint64_t p_begin = d > n_left ? d - n_left : 0;
      const std::uint64_t p_end = std::min<std::uint64_t>(d, n_right);
      for (std::uint64_t p = p_begin; p < p_end; ++p) {
        const double later = other.head_[j][static_cast<std::size_t>(p)];
        const double earlier = ring_[j][(n_left + p - d) % max_lag_];
        lag_sum_[base + k].add(later * earlier);
      }
    }
    if (max_lag_ > 0) {
      while (head_[j].size() < max_lag_ &&
             head_[j].size() < n_left + other.head_[j].size()) {
        head_[j].push_back(
            other.head_[j][head_[j].size() -
                           static_cast<std::size_t>(n_left)]);
      }
      std::vector<double> ring(max_lag_);
      const std::uint64_t total = n_left + n_right;
      const std::uint64_t q_begin = total > max_lag_ ? total - max_lag_ : 0;
      for (std::uint64_t q = q_begin; q < total; ++q) {
        ring[q % max_lag_] = q >= n_left
                                 ? other.ring_[j][(q - n_left) % max_lag_]
                                 : ring_[j][q % max_lag_];
      }
      ring_[j] = std::move(ring);
    }
  }
  count_ = n_left + n_right;
}

double MutualInformationAccumulator::sum(std::size_t branch) const {
  RFADE_EXPECTS(branch < dimension_, "MutualInformationAccumulator: branch oob");
  return sum_[branch].value();
}

double MutualInformationAccumulator::sum_squares(std::size_t branch) const {
  RFADE_EXPECTS(branch < dimension_, "MutualInformationAccumulator: branch oob");
  return sum_sq_[branch].value();
}

double MutualInformationAccumulator::lag_product_sum(std::size_t branch,
                                                     std::size_t lag) const {
  RFADE_EXPECTS(branch < dimension_, "MutualInformationAccumulator: branch oob");
  return lag_sum_[branch * lags_.size() + lag_index(lag)].value();
}

double MutualInformationAccumulator::mean(std::size_t branch) const {
  RFADE_EXPECTS(branch < dimension_, "MutualInformationAccumulator: branch oob");
  if (count_ == 0) {
    throw ValueError("MutualInformationAccumulator: no samples accumulated");
  }
  return sum_[branch].value() / static_cast<double>(count_);
}

double MutualInformationAccumulator::variance(std::size_t branch) const {
  const double m = mean(branch);
  return sum_sq_[branch].value() / static_cast<double>(count_) - m * m;
}

double MutualInformationAccumulator::autocovariance(std::size_t branch,
                                                    std::size_t lag) const {
  const std::size_t k = lag_index(lag);
  if (count_ <= lag) {
    throw ValueError("MutualInformationAccumulator: no pairs at lag " +
                     std::to_string(lag));
  }
  const double m = mean(branch);
  const double pairs = static_cast<double>(count_ - lag);
  return lag_sum_[branch * lags_.size() + k].value() / pairs - m * m;
}

}  // namespace rfade::metrics
