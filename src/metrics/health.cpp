#include "rfade/metrics/health.hpp"

#include <cmath>

#include "rfade/special/bessel.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/stats/mutual_information.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::metrics {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;
constexpr double kLn10Over20 = 0.11512925464970228420089957273422;

double field_correlation(const AnalyticReference& ref, std::size_t lag) {
  return special::bessel_j0(2.0 * kPi * ref.normalized_doppler *
                            static_cast<double>(lag));
}

double relative_drift(double measured, double expected) {
  return std::abs(measured - expected) / std::abs(expected);
}

}  // namespace

double expected_lcr_per_sample(const AnalyticReference& ref, double rho) {
  return stats::theoretical_lcr(rho, ref.normalized_doppler);
}

double expected_afd_samples(const AnalyticReference& ref, double rho) {
  return stats::theoretical_afd(rho, ref.normalized_doppler);
}

double expected_acf(const AnalyticReference& ref, std::size_t lag) {
  double acf = field_correlation(ref, lag);
  if (ref.shadowing) {
    // Lognormal gain ACF over the Gudmundson dB-domain exponential:
    // E[g g_d]/E[g^2] = exp(sigma_n^2 (e^{-d/D} - 1)) with
    // sigma_n = sigma_dB ln(10)/20 — the "J0 x exponential" product law.
    const double sigma_n = ref.shadowing->sigma_db * kLn10Over20;
    const double gudmundson = std::exp(
        -static_cast<double>(lag) / ref.shadowing->decorrelation_samples);
    acf *= std::exp(sigma_n * sigma_n * (gudmundson - 1.0));
  }
  return acf;
}

double expected_mi_mean(const AnalyticReference& ref) {
  return stats::mi_mean(ref.snr_linear);
}

double expected_mi_variance(const AnalyticReference& ref) {
  return stats::mi_variance(ref.snr_linear);
}

double expected_mi_autocovariance(const AnalyticReference& ref,
                                  std::size_t lag) {
  return stats::mi_autocovariance(ref.snr_linear,
                                  field_correlation(ref, lag));
}

std::vector<DriftReport> evaluate_health(const LevelCrossingAccumulator& lcr,
                                         const AnalyticReference& ref,
                                         const HealthTolerances& tolerances) {
  std::vector<DriftReport> reports;
  if (!ref.rayleigh || ref.shadowing || lcr.count() == 0) return reports;
  for (std::size_t j = 0; j < lcr.dimension(); ++j) {
    for (std::size_t t = 0; t < lcr.thresholds().size(); ++t) {
      const double rho = lcr.thresholds()[t];
      const LevelCrossingStats stats = lcr.finalize(j, t);
      DriftReport report;
      report.metric = "lcr";
      report.branch = j;
      report.parameter = rho;
      report.measured = stats.lcr_per_sample;
      report.expected = expected_lcr_per_sample(ref, rho);
      report.drift = relative_drift(report.measured, report.expected);
      report.tolerance = tolerances.lcr;
      report.ok = report.drift <= report.tolerance;
      reports.push_back(report);
      if (stats.up_crossings > 0) {
        DriftReport afd;
        afd.metric = "afd";
        afd.branch = j;
        afd.parameter = rho;
        afd.measured = stats.afd_samples;
        afd.expected = expected_afd_samples(ref, rho);
        afd.drift = relative_drift(afd.measured, afd.expected);
        afd.tolerance = tolerances.afd;
        afd.ok = afd.drift <= afd.tolerance;
        reports.push_back(afd);
      }
    }
  }
  return reports;
}

std::vector<DriftReport> evaluate_health(const AcfAccumulator& acf,
                                         const AnalyticReference& ref,
                                         const HealthTolerances& tolerances) {
  std::vector<DriftReport> reports;
  // The complex-ACF reference holds for the Rayleigh core and, via the
  // product law, the Suzuki composite over it.
  if (!ref.rayleigh) return reports;
  for (std::size_t j = 0; j < acf.dimension(); ++j) {
    for (const std::size_t lag : acf.lags()) {
      if (lag == 0 || acf.count() <= lag) continue;
      DriftReport report;
      report.metric = "acf";
      report.branch = j;
      report.parameter = static_cast<double>(lag);
      report.measured = acf.autocorrelation(j, lag).real();
      report.expected = expected_acf(ref, lag);
      report.drift = std::abs(report.measured - report.expected);
      report.tolerance = tolerances.acf;
      report.ok = report.drift <= report.tolerance;
      reports.push_back(report);
    }
  }
  return reports;
}

std::vector<DriftReport> evaluate_health(const MutualInformationAccumulator& mi,
                                         const AnalyticReference& ref,
                                         const HealthTolerances& tolerances) {
  std::vector<DriftReport> reports;
  if (!ref.rayleigh || ref.shadowing || mi.count() == 0) return reports;
  const double variance_ref = expected_mi_variance(ref);
  for (std::size_t j = 0; j < mi.dimension(); ++j) {
    DriftReport mean;
    mean.metric = "mi_mean";
    mean.branch = j;
    mean.measured = mi.mean(j);
    mean.expected = expected_mi_mean(ref);
    mean.drift = relative_drift(mean.measured, mean.expected);
    mean.tolerance = tolerances.mi_mean;
    mean.ok = mean.drift <= mean.tolerance;
    reports.push_back(mean);

    DriftReport variance;
    variance.metric = "mi_variance";
    variance.branch = j;
    variance.measured = mi.variance(j);
    variance.expected = variance_ref;
    variance.drift = relative_drift(variance.measured, variance.expected);
    variance.tolerance = tolerances.mi_variance;
    variance.ok = variance.drift <= variance.tolerance;
    reports.push_back(variance);

    for (const std::size_t lag : mi.lags()) {
      if (mi.count() <= lag) continue;
      DriftReport cov;
      cov.metric = "mi_autocov";
      cov.branch = j;
      cov.parameter = static_cast<double>(lag);
      cov.measured = mi.autocovariance(j, lag);
      cov.expected = expected_mi_autocovariance(ref, lag);
      cov.drift = std::abs(cov.measured - cov.expected) / variance_ref;
      cov.tolerance = tolerances.mi_autocovariance;
      cov.ok = cov.drift <= cov.tolerance;
      reports.push_back(cov);
    }
  }
  return reports;
}

}  // namespace rfade::metrics
