#include "rfade/metrics/tap.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"
#include "rfade/telemetry/instruments.hpp"
#include "rfade/telemetry/registry.hpp"

namespace rfade::metrics {

namespace {

/// Deterministic short decimal for label values ("0.5", "8", "1e-05").
std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

std::string join_labels(std::string base, const std::string& extra) {
  if (extra.empty()) return base;
  if (base.empty()) return extra;
  base += ',';
  base += extra;
  return base;
}

}  // namespace

MetricsTap::MetricsTap(AnalyticReference reference, MetricsTapConfig config)
    : reference_(std::move(reference)),
      config_(std::move(config)),
      dimension_(reference_.branch_power.size()),
      enabled_(config_.enabled) {
  RFADE_EXPECTS(dimension_ >= 1,
                "MetricsTap: reference must carry per-branch powers");
  for (const double power : reference_.branch_power) {
    RFADE_EXPECTS(power > 0.0 && std::isfinite(power),
                  "MetricsTap: branch powers must be finite > 0");
  }
  if (!config_.thresholds.empty()) {
    std::vector<double> rms(dimension_);
    for (std::size_t j = 0; j < dimension_; ++j) {
      rms[j] = std::sqrt(reference_.branch_power[j]);
    }
    lcr_ = std::make_unique<LevelCrossingAccumulator>(
        dimension_, config_.thresholds, std::move(rms));
  }
  if (!config_.lags.empty()) {
    acf_ = std::make_unique<AcfAccumulator>(dimension_, config_.lags);
  }
  if (config_.snr_linear > 0.0) {
    mi_ = std::make_unique<MutualInformationAccumulator>(
        dimension_, config_.snr_linear, reference_.branch_power,
        config_.lags);
  }
  if (!lcr_ && !acf_ && !mi_) {
    throw ValueError("MetricsTap: configuration enables no accumulator");
  }
}

MetricsTap::~MetricsTap() = default;

std::uint64_t MetricsTap::samples_observed() const noexcept {
  if (lcr_) return lcr_->count();
  if (acf_) return acf_->count();
  return mi_ ? mi_->count() : 0;
}

template <typename Block>
void MetricsTap::observe_impl(const Block& block) {
  if (lcr_) lcr_->accumulate(block);
  if (acf_) acf_->accumulate(block);
  if (mi_) mi_->accumulate(block);
  ++blocks_observed_;
  if (config_.publish_every_blocks != 0 &&
      blocks_observed_ % config_.publish_every_blocks == 0) {
    publish();
  }
}

void MetricsTap::observe(const numeric::CMatrix& block) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  observe_impl(block);
}

void MetricsTap::observe(const numeric::CMatrixF& block) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  observe_impl(block);
}

std::shared_ptr<telemetry::Gauge> MetricsTap::gauge(const std::string& name,
                                                    const std::string& labels) {
  telemetry::Registry& registry =
      config_.registry != nullptr ? *config_.registry
                                  : telemetry::Registry::global();
  return registry.gauge(name, labels);
}

void MetricsTap::publish() {
  if constexpr (!telemetry::kCompiledIn) return;
  if (samples_observed() == 0) return;
  const std::string session_label =
      config_.session.empty() ? std::string()
                              : telemetry::label("session", config_.session);
  gauge("rfade_metrics_observed_samples", session_label)
      ->set(static_cast<double>(samples_observed()));
  for (std::size_t j = 0; j < dimension_; ++j) {
    const std::string branch = telemetry::label("branch", format_number(
                                                    static_cast<double>(j)));
    if (lcr_) {
      for (std::size_t t = 0; t < lcr_->thresholds().size(); ++t) {
        const LevelCrossingStats stats = lcr_->finalize(j, t);
        const std::string labels = join_labels(
            join_labels(branch, telemetry::label(
                                    "rho", format_number(
                                               lcr_->thresholds()[t]))),
            session_label);
        gauge("rfade_metrics_lcr_per_sample", labels)->set(
            stats.lcr_per_sample);
        gauge("rfade_metrics_afd_samples", labels)->set(stats.afd_samples);
      }
    }
    if (acf_) {
      for (const std::size_t lag : acf_->lags()) {
        if (lag == 0 || acf_->count() <= lag) continue;
        const numeric::cdouble rho = acf_->autocorrelation(j, lag);
        const std::string labels = join_labels(
            join_labels(branch, telemetry::label(
                                    "lag", format_number(
                                               static_cast<double>(lag)))),
            session_label);
        gauge("rfade_metrics_acf_re", labels)->set(rho.real());
        gauge("rfade_metrics_acf_im", labels)->set(rho.imag());
      }
    }
    if (mi_ && mi_->count() > 0) {
      const std::string labels = join_labels(branch, session_label);
      gauge("rfade_metrics_mi_mean", labels)->set(mi_->mean(j));
      gauge("rfade_metrics_mi_variance", labels)->set(mi_->variance(j));
      for (const std::size_t lag : mi_->lags()) {
        if (mi_->count() <= lag) continue;
        gauge("rfade_metrics_mi_autocov",
              join_labels(
                  join_labels(branch,
                              telemetry::label(
                                  "lag",
                                  format_number(static_cast<double>(lag)))),
                  session_label))
            ->set(mi_->autocovariance(j, lag));
      }
    }
  }
  bool all_ok = true;
  for (const DriftReport& report : health()) {
    const std::string labels = join_labels(
        join_labels(
            join_labels(telemetry::label("metric", report.metric),
                        telemetry::label(
                            "branch",
                            format_number(
                                static_cast<double>(report.branch)))),
            telemetry::label("parameter", format_number(report.parameter))),
        session_label);
    gauge("rfade_metrics_drift", labels)->set(report.drift);
    all_ok = all_ok && report.ok;
  }
  gauge("rfade_metrics_healthy", session_label)->set(all_ok ? 1.0 : 0.0);
}

std::vector<DriftReport> MetricsTap::health() const {
  std::vector<DriftReport> reports;
  if (lcr_ && lcr_->count() > 0) {
    auto r = evaluate_health(*lcr_, reference_, config_.tolerances);
    reports.insert(reports.end(), r.begin(), r.end());
  }
  if (acf_ && acf_->count() > 0) {
    auto r = evaluate_health(*acf_, reference_, config_.tolerances);
    reports.insert(reports.end(), r.begin(), r.end());
  }
  if (mi_ && mi_->count() > 0) {
    auto r = evaluate_health(*mi_, reference_, config_.tolerances);
    reports.insert(reports.end(), r.begin(), r.end());
  }
  return reports;
}

bool MetricsTap::healthy() const {
  for (const DriftReport& report : health()) {
    if (!report.ok) return false;
  }
  return true;
}

void MetricsTap::merge(const MetricsTap& other) {
  if (static_cast<bool>(lcr_) != static_cast<bool>(other.lcr_) ||
      static_cast<bool>(acf_) != static_cast<bool>(other.acf_) ||
      static_cast<bool>(mi_) != static_cast<bool>(other.mi_)) {
    throw DimensionError("MetricsTap::merge: mismatched configuration");
  }
  if (lcr_) lcr_->merge(*other.lcr_);
  if (acf_) acf_->merge(*other.acf_);
  if (mi_) mi_->merge(*other.mi_);
  blocks_observed_ += other.blocks_observed_;
}

}  // namespace rfade::metrics
