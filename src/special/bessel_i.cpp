#include "rfade/special/bessel_i.hpp"

#include <cmath>

namespace rfade::special {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Power series I_0(x) = sum (x^2/4)^k / (k!)^2; all terms positive.
double series_i0(double ax) {
  const double q = 0.25 * ax * ax;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 200; ++k) {
    term *= q / (static_cast<double>(k) * static_cast<double>(k));
    sum += term;
    if (term < sum * 1e-17) {
      break;
    }
  }
  return sum;
}

/// Power series I_1(x) = (x/2) sum (x^2/4)^k / (k! (k+1)!).
double series_i1(double ax) {
  const double q = 0.25 * ax * ax;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 200; ++k) {
    term *= q / (static_cast<double>(k) * static_cast<double>(k + 1));
    sum += term;
    if (term < sum * 1e-17) {
      break;
    }
  }
  return 0.5 * ax * sum;
}

/// Hankel asymptotic expansion of e^{-x} I_nu(x) for large x (A&S 9.7.1):
/// sum_k (-1)^k prod_{j<=k}(mu - (2j-1)^2) / (k! (8x)^k) / sqrt(2 pi x),
/// mu = 4 nu^2.  The terms shrink until k ~ x, far past truncation here.
double asymptotic_scaled(double ax, double mu) {
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k <= 30; ++k) {
    const double odd = 2.0 * k - 1.0;
    const double next = term * (odd * odd - mu) / (8.0 * ax * k);
    if (std::abs(next) >= std::abs(term)) {
      break;  // asymptotic series started diverging; stop at the smallest term
    }
    term = next;
    sum += term;
    if (std::abs(term) < sum * 1e-17) {
      break;
    }
  }
  return sum / std::sqrt(kTwoPi * ax);
}

constexpr double kSeriesCutoff = 30.0;

}  // namespace

double bessel_i0(double x) {
  const double ax = std::abs(x);
  if (ax <= kSeriesCutoff) {
    return series_i0(ax);
  }
  return std::exp(ax) * asymptotic_scaled(ax, 0.0);
}

double bessel_i1(double x) {
  const double ax = std::abs(x);
  const double value = ax <= kSeriesCutoff
                           ? series_i1(ax)
                           : std::exp(ax) * asymptotic_scaled(ax, 4.0);
  return x < 0.0 ? -value : value;
}

double bessel_i0e(double x) {
  const double ax = std::abs(x);
  if (ax <= kSeriesCutoff) {
    return std::exp(-ax) * series_i0(ax);
  }
  return asymptotic_scaled(ax, 0.0);
}

double bessel_i1e(double x) {
  const double ax = std::abs(x);
  const double value = ax <= kSeriesCutoff ? std::exp(-ax) * series_i1(ax)
                                           : asymptotic_scaled(ax, 4.0);
  return x < 0.0 ? -value : value;
}

}  // namespace rfade::special
