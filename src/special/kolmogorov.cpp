#include "rfade/special/kolmogorov.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::special {

double kolmogorov_survival(double lambda) {
  if (lambda <= 0.0) {
    return 1.0;
  }
  // The alternating series converges extremely fast for lambda > ~0.3;
  // below that the value is 1 to double precision anyway.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 101; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-18) {
      break;
    }
  }
  const double q = 2.0 * sum;
  return q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
}

double kolmogorov_p_value(double d, double n) {
  RFADE_EXPECTS(d >= 0.0, "kolmogorov_p_value: statistic must be non-negative");
  RFADE_EXPECTS(n > 0.0, "kolmogorov_p_value: sample count must be positive");
  const double sqrt_n = std::sqrt(n);
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  return kolmogorov_survival(lambda);
}

}  // namespace rfade::special
