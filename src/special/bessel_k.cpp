#include "rfade/special/bessel_k.hpp"

#include <cmath>

#include "rfade/special/bessel_i.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::special {

namespace {

constexpr double kEulerGamma = 0.57721566490153286060651209008240;

/// DLMF 10.31.2: K_0(x) = -(ln(x/2) + gamma) I_0(x)
///                        + sum_{k>=1} H_k (x^2/4)^k / (k!)^2.
double k0_series(double x) {
  const double q = 0.25 * x * x;
  double term = 1.0;     // (x^2/4)^k / (k!)^2 at k = 0
  double harmonic = 0.0; // H_k
  double sum = 0.0;
  for (int k = 1; k < 40; ++k) {
    term *= q / (static_cast<double>(k) * static_cast<double>(k));
    harmonic += 1.0 / static_cast<double>(k);
    const double contribution = term * harmonic;
    sum += contribution;
    if (contribution < 1e-18 * (1.0 + sum)) {
      break;
    }
  }
  return -(std::log(0.5 * x) + kEulerGamma) * bessel_i0(x) + sum;
}

/// DLMF 10.31.1 for n = 1:
/// K_1(x) = 1/x + ln(x/2) I_1(x)
///          - (x/4) sum_{k>=0} (psi(k+1) + psi(k+2)) (x^2/4)^k / (k!(k+1)!)
/// with psi(1) = -gamma, psi(n+1) = psi(n) + 1/n.
double k1_series(double x) {
  const double q = 0.25 * x * x;
  double term = 1.0;  // (x^2/4)^k / (k! (k+1)!) at k = 0
  double psi_a = -kEulerGamma;        // psi(k+1)
  double psi_b = 1.0 - kEulerGamma;   // psi(k+2)
  double sum = 0.0;
  for (int k = 0; k < 40; ++k) {
    const double contribution = term * (psi_a + psi_b);
    sum += contribution;
    if (std::abs(contribution) < 1e-18 * (1.0 + std::abs(sum))) {
      break;
    }
    const double kk = static_cast<double>(k + 1);
    term *= q / (kk * (kk + 1.0));
    psi_a += 1.0 / kk;
    psi_b += 1.0 / (kk + 1.0);
  }
  return 1.0 / x + std::log(0.5 * x) * bessel_i1(x) - 0.25 * x * sum;
}

/// Scaled trapezoid of the integral representation (DLMF 10.32.9):
/// e^{x} K_n(x) = int_0^inf e^{-x (cosh t - 1)} cosh(n t) dt.  The
/// integrand is analytic, even in t, and decays doubly exponentially, so
/// the trapezoidal sum converges geometrically in h.
double ke_integral(double x, int order) {
  // Truncate where the exponent passes ~ -46 (e^-46 ~ 1e-20, below the
  // target accuracy even after summing ~1e3 points).
  const double t_max = std::acosh(1.0 + 46.0 / x);
  const int points = 64;
  const double h = t_max / points;
  double sum = 0.5;  // t = 0 endpoint: integrand is exactly 1 (cosh 0 = 1).
  for (int i = 1; i <= points; ++i) {
    const double t = h * i;
    const double weight = order == 0 ? 1.0 : std::cosh(order * t);
    sum += std::exp(-x * (std::cosh(t) - 1.0)) * weight;
  }
  return h * sum;
}

}  // namespace

double bessel_k0(double x) {
  RFADE_EXPECTS(x > 0.0, "bessel_k0: argument must be positive");
  if (x <= 2.0) {
    return k0_series(x);
  }
  return std::exp(-x) * ke_integral(x, 0);
}

double bessel_k1(double x) {
  RFADE_EXPECTS(x > 0.0, "bessel_k1: argument must be positive");
  if (x <= 2.0) {
    return k1_series(x);
  }
  return std::exp(-x) * ke_integral(x, 1);
}

double bessel_k0e(double x) {
  RFADE_EXPECTS(x > 0.0, "bessel_k0e: argument must be positive");
  if (x <= 2.0) {
    return std::exp(x) * k0_series(x);
  }
  return ke_integral(x, 0);
}

double bessel_k1e(double x) {
  RFADE_EXPECTS(x > 0.0, "bessel_k1e: argument must be positive");
  if (x <= 2.0) {
    return std::exp(x) * k1_series(x);
  }
  return ke_integral(x, 1);
}

}  // namespace rfade::special
