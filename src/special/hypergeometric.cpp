#include "rfade/special/hypergeometric.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"

namespace rfade::special {

double hypergeometric_2f1(double a, double b, double c, double x) {
  RFADE_EXPECTS(std::abs(x) <= 1.0, "2F1: series requires |x| <= 1");
  RFADE_EXPECTS(!(c <= 0.0 && c == std::floor(c)),
                "2F1: c must not be a non-positive integer");
  if (std::abs(x) == 1.0) {
    RFADE_EXPECTS(c - a - b > 0.0,
                  "2F1: series at |x| = 1 requires c - a - b > 0");
  }
  // term_{k+1} = term_k * (a+k)(b+k) / ((c+k)(1+k)) * x.  At |x| = 1 the
  // terms decay only polynomially (k^{-(c-a-b+1)}), so the iteration cap
  // must be generous: for the Rayleigh case (-1/2,-1/2;1;1) full double
  // precision needs ~2e5 terms.
  double term = 1.0;
  double sum = 1.0;
  for (int k = 0; k < 2000000; ++k) {
    term *= (a + k) * (b + k) / ((c + k) * (1.0 + k)) * x;
    sum += term;
    if (term == 0.0 || std::abs(term) < 1e-17 * std::abs(sum)) {
      return sum;
    }
  }
  throw ConvergenceError("hypergeometric_2f1: series did not converge");
}

}  // namespace rfade::special
