#include "rfade/special/gamma.hpp"

#include <cmath>
#include <limits>

#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"

namespace rfade::special {

namespace {

/// Series representation of P(a,x), effective for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double term = 1.0 / a;
  double sum = term;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) {
      return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
    }
  }
  throw ConvergenceError("regularized_gamma_p: series did not converge");
}

/// Modified Lentz continued fraction for Q(a,x), effective for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) {
      d = tiny;
    }
    c = b + an / c;
    if (std::abs(c) < tiny) {
      c = tiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) {
      return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
    }
  }
  throw ConvergenceError(
      "regularized_gamma_q: continued fraction did not converge");
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  RFADE_EXPECTS(a > 0.0, "regularized_gamma_p: a must be positive");
  RFADE_EXPECTS(x >= 0.0, "regularized_gamma_p: x must be non-negative");
  if (x == 0.0) {
    return 0.0;
  }
  return x < a + 1.0 ? gamma_p_series(a, x)
                     : 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  RFADE_EXPECTS(a > 0.0, "regularized_gamma_q: a must be positive");
  RFADE_EXPECTS(x >= 0.0, "regularized_gamma_q: x must be non-negative");
  if (x == 0.0) {
    return 1.0;
  }
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x)
                     : gamma_q_continued_fraction(a, x);
}

double chi_square_survival(double x, double dof) {
  RFADE_EXPECTS(dof > 0.0, "chi_square_survival: dof must be positive");
  RFADE_EXPECTS(x >= 0.0, "chi_square_survival: x must be non-negative");
  return regularized_gamma_q(0.5 * dof, 0.5 * x);
}

}  // namespace rfade::special
