#include "rfade/special/gamma.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rfade/support/contracts.hpp"
#include "rfade/support/error.hpp"

namespace rfade::special {

namespace {

/// Series representation of P(a,x), effective for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double term = 1.0 / a;
  double sum = term;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) {
      return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
    }
  }
  throw ConvergenceError("regularized_gamma_p: series did not converge");
}

/// Modified Lentz continued fraction for Q(a,x), effective for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) {
      d = tiny;
    }
    c = b + an / c;
    if (std::abs(c) < tiny) {
      c = tiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) {
      return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
    }
  }
  throw ConvergenceError(
      "regularized_gamma_q: continued fraction did not converge");
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  RFADE_EXPECTS(a > 0.0, "regularized_gamma_p: a must be positive");
  RFADE_EXPECTS(x >= 0.0, "regularized_gamma_p: x must be non-negative");
  if (x == 0.0) {
    return 0.0;
  }
  return x < a + 1.0 ? gamma_p_series(a, x)
                     : 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  RFADE_EXPECTS(a > 0.0, "regularized_gamma_q: a must be positive");
  RFADE_EXPECTS(x >= 0.0, "regularized_gamma_q: x must be non-negative");
  if (x == 0.0) {
    return 1.0;
  }
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x)
                     : gamma_q_continued_fraction(a, x);
}

double chi_square_survival(double x, double dof) {
  RFADE_EXPECTS(dof > 0.0, "chi_square_survival: dof must be positive");
  RFADE_EXPECTS(x >= 0.0, "chi_square_survival: x must be non-negative");
  return regularized_gamma_q(0.5 * dof, 0.5 * x);
}

double inverse_regularized_gamma_p(double a, double p) {
  RFADE_EXPECTS(a > 0.0, "inverse_regularized_gamma_p: a must be positive");
  RFADE_EXPECTS(p >= 0.0 && p < 1.0,
                "inverse_regularized_gamma_p: p must be in [0, 1)");
  if (p == 0.0) {
    return 0.0;
  }
  const double gln = std::lgamma(a);
  const double a1 = a - 1.0;
  double x;
  double afac = 0.0;
  if (a > 1.0) {
    // Wilson-Hilferty start: x ~ a (1 - 1/(9a) - z/(3 sqrt(a)))^3 with
    // z a rational approximation to the upper-tail normal quantile.
    afac = std::exp(a1 * (std::log(a1) - 1.0) - gln);
    const double pp = p < 0.5 ? p : 1.0 - p;
    const double t = std::sqrt(-2.0 * std::log(pp));
    double z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) -
               t;
    if (p < 0.5) {
      z = -z;
    }
    x = std::max(
        1e-3, a * std::pow(1.0 - 1.0 / (9.0 * a) - z / (3.0 * std::sqrt(a)),
                           3.0));
  } else {
    // Small-a start from the leading behaviour of P near 0 and 1.
    const double t = 1.0 - a * (0.253 + a * 0.12);
    x = p < t ? std::pow(p / t, 1.0 / a)
              : 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
  }
  // Safeguarded Halley refinement on P(a, x) - p.
  for (int j = 0; j < 24; ++j) {
    if (x <= 0.0) {
      return 0.0;
    }
    const double err = regularized_gamma_p(a, x) - p;
    double t;
    if (a > 1.0) {
      t = afac * std::exp(-(x - a1) + a1 * (std::log(x) - std::log(a1)));
    } else {
      t = std::exp(-x + a1 * std::log(x) - gln);
    }
    const double u = err / t;
    t = u / (1.0 - 0.5 * std::min(1.0, u * (a1 / x - 1.0)));
    x -= t;
    if (x <= 0.0) {
      x = 0.5 * (x + t);
    }
    if (std::abs(t) < 1e-13 * x) {
      break;
    }
  }
  return x;
}

}  // namespace rfade::special
