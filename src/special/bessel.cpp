#include "rfade/special/bessel.hpp"

#include <cmath>
#include <cstdlib>

#include "rfade/support/error.hpp"

namespace rfade::special {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;
/// Below this |x| the power series is used for J0/J1; above it the Hankel
/// asymptotic expansion.  At the crossover both are accurate to ~1e-11.
constexpr double kSeriesLimit = 12.0;

/// Power series J_nu(x) = (x/2)^nu sum_k (-1)^k (x^2/4)^k / (k! (k+nu)!)
/// for nu in {0,1}; converges for any x, used only below kSeriesLimit where
/// cancellation stays under ~1e-11 absolute.
double series_j01(int nu, double x) {
  const double q = 0.25 * x * x;
  double term = nu == 0 ? 1.0 : 0.5 * x;
  double sum = term;
  for (int k = 1; k < 80; ++k) {
    term *= -q / (static_cast<double>(k) * (k + nu));
    sum += term;
    if (std::abs(term) < 1e-17 * (std::abs(sum) + 1e-300)) {
      break;
    }
  }
  return sum;
}

/// Hankel asymptotic expansion for J_nu, nu in {0,1}, x > kSeriesLimit:
///   J_nu(x) ~ sqrt(2/(pi x)) [ P cos(chi) - Q sin(chi) ],
///   chi = x - nu*pi/2 - pi/4,
/// P and Q summed to the smallest term (optimal truncation).
double asymptotic_j01(int nu, double x) {
  const double mu = 4.0 * nu * nu;
  double term = 1.0;
  double p_sum = 1.0;
  double q_sum = 0.0;
  double last = 1.0;
  for (int k = 1; k < 40; ++k) {
    const double odd = 2.0 * k - 1.0;
    term *= (mu - odd * odd) / (static_cast<double>(k) * 8.0 * x);
    if (std::abs(term) >= std::abs(last)) {
      break;  // asymptotic series started diverging: stop at optimal point
    }
    last = term;
    const int phase = k / 2;  // pairs of terms alternate sign
    const double signed_term = (phase % 2 == 0) ? term : -term;
    if (k % 2 == 1) {
      q_sum += signed_term;
    } else {
      p_sum += signed_term;
    }
    if (std::abs(term) < 1e-17) {
      break;
    }
  }
  const double chi = x - 0.5 * nu * kPi - 0.25 * kPi;
  return std::sqrt(2.0 / (kPi * x)) *
         (p_sum * std::cos(chi) - q_sum * std::sin(chi));
}

}  // namespace

double bessel_j0(double x) {
  const double ax = std::abs(x);
  return ax <= kSeriesLimit ? series_j01(0, ax) : asymptotic_j01(0, ax);
}

double bessel_j1(double x) {
  const double ax = std::abs(x);
  const double value =
      ax <= kSeriesLimit ? series_j01(1, ax) : asymptotic_j01(1, ax);
  return x < 0.0 ? -value : value;
}

double bessel_jn(int n, double x) {
  // Reflection identities: J_{-n}(x) = (-1)^n J_n(x); J_n(-x) = (-1)^n J_n(x).
  bool negate = false;
  if (n < 0) {
    n = -n;
    negate ^= (n & 1) != 0;
  }
  if (x < 0.0) {
    x = -x;
    negate ^= (n & 1) != 0;
  }
  double value = 0.0;
  if (n == 0) {
    value = bessel_j0(x);
  } else if (n == 1) {
    value = bessel_j1(x);
  } else if (x == 0.0) {
    value = 0.0;
  } else if (static_cast<double>(n) < x) {
    // Upward recurrence J_{j+1} = (2j/x) J_j - J_{j-1}: stable for n < x.
    const double two_over_x = 2.0 / x;
    double jm = bessel_j0(x);
    double jc = bessel_j1(x);
    for (int j = 1; j < n; ++j) {
      const double jp = j * two_over_x * jc - jm;
      jm = jc;
      jc = jp;
    }
    value = jc;
  } else {
    // Miller's algorithm: downward recurrence from a start order well above
    // n, normalised by the identity J_0 + 2 (J_2 + J_4 + ...) = 1.
    constexpr double kAccuracy = 160.0;  // extra orders for double precision
    constexpr double kRescaleAt = 1e150;
    constexpr double kRescaleBy = 1e-150;
    const int start =
        2 * ((n + static_cast<int>(std::sqrt(kAccuracy * n))) / 2);
    const double two_over_x = 2.0 / x;
    double jp = 0.0;
    double jc = 1.0;
    double even_sum = 0.0;
    double answer = 0.0;
    bool accumulate = false;
    for (int j = start; j > 0; --j) {
      const double jm = j * two_over_x * jc - jp;
      jp = jc;
      jc = jm;
      if (std::abs(jc) > kRescaleAt) {
        jc *= kRescaleBy;
        jp *= kRescaleBy;
        even_sum *= kRescaleBy;
        answer *= kRescaleBy;
      }
      if (accumulate) {
        even_sum += jc;
      }
      accumulate = !accumulate;
      if (j == n) {
        answer = jp;
      }
    }
    const double norm = 2.0 * even_sum - jc;  // = J_0 + 2*sum of even orders
    value = answer / norm;
  }
  return negate ? -value : value;
}

}  // namespace rfade::special
