#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/error.hpp"

namespace rfade::numeric {

namespace {

/// Implicit-shift QL iteration on a real symmetric tridiagonal matrix.
///
/// \param d    diagonal, overwritten with eigenvalues (unsorted).
/// \param e    subdiagonal e[i] = T(i+1, i); e[n-1] is workspace.
/// \param z    rotation accumulator (identity on entry); on exit its
///             columns are the tridiagonal eigenvectors.
/// \param max_iterations per-eigenvalue iteration budget.
void tql2(std::vector<double>& d, std::vector<double>& e, RMatrix& z,
          int max_iterations) {
  const int n = static_cast<int>(d.size());
  if (n <= 1) {
    return;
  }
  const double eps = std::numeric_limits<double>::epsilon();
  e[static_cast<std::size_t>(n - 1)] = 0.0;

  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m = 0;
    do {
      // Look for a single negligible subdiagonal element to split the matrix.
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= eps * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == max_iterations) {
          throw ConvergenceError(
              "eigen_hermitian_ql: QL iteration budget exhausted");
        }
        // Wilkinson-style shift from the 2x2 block at l.
        double g = (d[static_cast<std::size_t>(l + 1)] -
                    d[static_cast<std::size_t>(l)]) /
                   (2.0 * e[static_cast<std::size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = m - 1;
        bool underflow = false;
        for (; i >= l; --i) {
          double f = s * e[static_cast<std::size_t>(i)];
          const double b = c * e[static_cast<std::size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<std::size_t>(i + 1)] = r;
          if (r == 0.0) {
            // Recover from underflow: deflate and restart this eigenvalue.
            d[static_cast<std::size_t>(i + 1)] -= p;
            e[static_cast<std::size_t>(m)] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i + 1)] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i + 1)] = g + p;
          g = c * r - b;
          // Accumulate the plane rotation into z (columns i, i+1).
          for (int k = 0; k < n; ++k) {
            f = z(static_cast<std::size_t>(k), static_cast<std::size_t>(i + 1));
            z(static_cast<std::size_t>(k), static_cast<std::size_t>(i + 1)) =
                s * z(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) +
                c * f;
            z(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) =
                c * z(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) -
                s * f;
          }
        }
        if (underflow && i >= l) {
          continue;
        }
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

HermitianEigen eigen_hermitian_ql(const CMatrix& input,
                                  const EigenOptions& options) {
  RFADE_EXPECTS(input.is_square(), "eigen: matrix must be square");
  RFADE_EXPECTS(is_hermitian(input, 1e-10), "eigen: matrix must be Hermitian");
  const std::size_t n = input.rows();

  HermitianEigen eig;
  eig.values.assign(n, 0.0);
  eig.vectors = CMatrix::identity(n);
  if (n == 0) {
    return eig;
  }
  if (n == 1) {
    eig.values[0] = input(0, 0).real();
    return eig;
  }

  CMatrix a = hermitian_part(input);
  CMatrix p_acc = CMatrix::identity(n);  // product of Householder reflectors

  // --- Householder reduction to complex tridiagonal form -------------------
  CVector v(n);  // reflector workspace
  CVector w(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    const std::size_t m = n - k - 1;  // size of the trailing column
    double col_norm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) {
      col_norm2 += std::norm(a(i, k));
    }
    const double r = std::sqrt(col_norm2);
    if (r == 0.0) {
      continue;  // column already reduced
    }
    const cdouble x0 = a(k + 1, k);
    const double abs_x0 = std::abs(x0);
    const cdouble phase = abs_x0 > 0.0 ? x0 / abs_x0 : cdouble(1.0, 0.0);
    const cdouble alpha = -phase * r;

    // v = x - alpha*e1; ||v||^2 = 2 r (r + |x0|), always > 0 here.
    v[0] = x0 - alpha;
    for (std::size_t i = 1; i < m; ++i) {
      v[i] = a(k + 1 + i, k);
    }
    const double vnorm2 = 2.0 * r * (r + abs_x0);
    const double beta = 2.0 / vnorm2;

    // Two-sided update of the trailing block B = A[k+1.., k+1..]:
    //   B <- B - v w^H - w v^H,  w = p - (beta/2)(v^H p) v,  p = beta B v.
    for (std::size_t i = 0; i < m; ++i) {
      cdouble acc{};
      for (std::size_t j = 0; j < m; ++j) {
        acc += a(k + 1 + i, k + 1 + j) * v[j];
      }
      w[i] = beta * acc;
    }
    cdouble vhp{};
    for (std::size_t i = 0; i < m; ++i) {
      vhp += std::conj(v[i]) * w[i];
    }
    const cdouble kappa = 0.5 * beta * vhp;
    for (std::size_t i = 0; i < m; ++i) {
      w[i] -= kappa * v[i];
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        a(k + 1 + i, k + 1 + j) -=
            v[i] * std::conj(w[j]) + w[i] * std::conj(v[j]);
      }
    }

    // Column/row k of the tridiagonal form.
    a(k + 1, k) = alpha;
    a(k, k + 1) = std::conj(alpha);
    for (std::size_t i = k + 2; i < n; ++i) {
      a(i, k) = cdouble{};
      a(k, i) = cdouble{};
    }

    // Accumulate P <- P * H with H = I - beta v v^H on indices k+1..n-1.
    for (std::size_t row = 0; row < n; ++row) {
      cdouble t{};
      for (std::size_t j = 0; j < m; ++j) {
        t += p_acc(row, k + 1 + j) * v[j];
      }
      t *= beta;
      for (std::size_t j = 0; j < m; ++j) {
        p_acc(row, k + 1 + j) -= t * std::conj(v[j]);
      }
    }
  }

  // --- Phase similarity: make the subdiagonal real and non-negative --------
  std::vector<double> d(n), e(n, 0.0);
  CVector phases(n, cdouble(1.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = a(i, i).real();
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const cdouble sub = a(i + 1, i);
    const double mag = std::abs(sub);
    e[i] = mag;
    phases[i + 1] = mag > 0.0 ? phases[i] * (sub / mag) : phases[i];
  }
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t col = 0; col < n; ++col) {
      p_acc(row, col) *= phases[col];
    }
  }

  // --- QL on the real tridiagonal matrix -----------------------------------
  RMatrix z = RMatrix::identity(n);
  tql2(d, e, z, options.max_iterations);

  // --- Sort ascending and back-transform the eigenvectors ------------------
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&d](std::size_t x, std::size_t y) { return d[x] < d[y]; });

  for (std::size_t j = 0; j < n; ++j) {
    eig.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      cdouble acc{};
      for (std::size_t m2 = 0; m2 < n; ++m2) {
        acc += p_acc(i, m2) * z(m2, order[j]);
      }
      eig.vectors(i, j) = acc;
    }
  }
  return eig;
}

}  // namespace rfade::numeric
