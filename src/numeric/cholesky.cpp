#include "rfade/numeric/cholesky.hpp"

#include <cmath>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/error.hpp"

namespace rfade::numeric {

CMatrix cholesky(const CMatrix& k, double tolerance) {
  RFADE_EXPECTS(k.is_square(), "cholesky: matrix must be square");
  RFADE_EXPECTS(is_hermitian(k, 1e-10), "cholesky: matrix must be Hermitian");
  RFADE_EXPECTS(tolerance >= 0.0, "cholesky: tolerance must be non-negative");
  const std::size_t n = k.rows();

  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(k(i, i).real()));
  }
  // A strictly positive floor mirrors the behaviour of practical chol
  // implementations, which reject pivots indistinguishable from zero.
  const double floor = std::max(tolerance, 1e-14) * std::max(max_diag, 1e-300);

  CMatrix l(n, n, cdouble{});
  for (std::size_t j = 0; j < n; ++j) {
    double sum = k(j, j).real();
    for (std::size_t m = 0; m < j; ++m) {
      sum -= std::norm(l(j, m));
    }
    if (!(sum > floor)) {
      throw NotPositiveDefiniteError(
          "cholesky: non-positive pivot at column " + std::to_string(j) +
          " (value " + std::to_string(sum) + ")");
    }
    const double ljj = std::sqrt(sum);
    l(j, j) = cdouble(ljj, 0.0);
    for (std::size_t i = j + 1; i < n; ++i) {
      cdouble acc = k(i, j);
      for (std::size_t m = 0; m < j; ++m) {
        acc -= l(i, m) * std::conj(l(j, m));
      }
      l(i, j) = acc / ljj;
    }
  }
  return l;
}

bool is_positive_definite(const CMatrix& k, double tolerance) {
  try {
    (void)cholesky(k, tolerance);
    return true;
  } catch (const NotPositiveDefiniteError&) {
    return false;
  }
}

CVector solve_lower_triangular(const CMatrix& l, const CVector& b) {
  RFADE_EXPECTS(l.is_square(), "solve_lower_triangular: matrix must be square");
  RFADE_EXPECTS(l.rows() == b.size(),
                "solve_lower_triangular: dimension mismatch");
  const std::size_t n = l.rows();
  CVector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    cdouble acc = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      acc -= l(i, j) * y[j];
    }
    if (std::abs(l(i, i)) == 0.0) {
      throw ValueError("solve_lower_triangular: zero diagonal entry");
    }
    y[i] = acc / l(i, i);
  }
  return y;
}

}  // namespace rfade::numeric
