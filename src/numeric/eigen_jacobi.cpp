#include <algorithm>
#include <cmath>
#include <numeric>

#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/error.hpp"

namespace rfade::numeric {

namespace {

/// Sum of squared magnitudes of the strictly-upper off-diagonal entries.
double off_diagonal_mass(const CMatrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      sum += std::norm(a(i, j));
    }
  }
  return sum;
}

/// Sort eigenpairs ascending by eigenvalue, permuting vector columns.
void sort_eigenpairs(HermitianEigen& eig) {
  const std::size_t n = eig.values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&eig](std::size_t a, std::size_t b) {
    return eig.values[a] < eig.values[b];
  });
  RVector sorted_values(n);
  CMatrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = eig.values[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vectors(i, j) = eig.vectors(i, order[j]);
    }
  }
  eig.values = std::move(sorted_values);
  eig.vectors = std::move(sorted_vectors);
}

}  // namespace

HermitianEigen eigen_hermitian_jacobi(const CMatrix& input,
                                      const EigenOptions& options) {
  RFADE_EXPECTS(input.is_square(), "eigen: matrix must be square");
  RFADE_EXPECTS(is_hermitian(input, 1e-10), "eigen: matrix must be Hermitian");
  const std::size_t n = input.rows();

  HermitianEigen eig;
  eig.values.assign(n, 0.0);
  eig.vectors = CMatrix::identity(n);
  if (n == 0) {
    return eig;
  }

  CMatrix a = hermitian_part(input);  // symmetrise away representation noise
  CMatrix& v = eig.vectors;

  const double norm_a = frobenius_norm(a);
  const double target = options.tolerance * std::max(norm_a, 1e-300);

  for (int sweep = 0; sweep < options.max_iterations; ++sweep) {
    if (std::sqrt(off_diagonal_mass(a)) <= target) {
      break;
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cdouble beta = a(p, q);
        const double abs_beta = std::abs(beta);
        const double alpha = a(p, p).real();
        const double gamma = a(q, q).real();
        // Skip rotations that cannot change the matrix in double precision.
        if (abs_beta <= 1e-300 ||
            abs_beta <= 1e-18 * (std::abs(alpha) + std::abs(gamma))) {
          a(p, q) = cdouble{};
          a(q, p) = cdouble{};
          continue;
        }

        // Phase that makes the pivot real, then a classical real Jacobi
        // rotation.  The combined unitary is
        //   J[p,p]=c, J[p,q]=s, J[q,p]=-conj(s), J[q,q]=c,
        // with c real and s = sigma * beta/|beta|.
        const cdouble phase = beta / abs_beta;
        const double tau = (gamma - alpha) / (2.0 * abs_beta);
        const double t =
            (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sigma = t * c;
        const cdouble s = sigma * phase;

        // Diagonal update (exact formulas; trace is preserved).
        a(p, p) = cdouble(c * c * alpha + sigma * sigma * gamma -
                              2.0 * c * sigma * abs_beta,
                          0.0);
        a(q, q) = cdouble(sigma * sigma * alpha + c * c * gamma +
                              2.0 * c * sigma * abs_beta,
                          0.0);
        a(p, q) = cdouble{};
        a(q, p) = cdouble{};

        // Rows/columns k != p,q.
        for (std::size_t k = 0; k < n; ++k) {
          if (k == p || k == q) {
            continue;
          }
          const cdouble akp = a(k, p);
          const cdouble akq = a(k, q);
          const cdouble new_kp = c * akp - std::conj(s) * akq;
          const cdouble new_kq = s * akp + c * akq;
          a(k, p) = new_kp;
          a(p, k) = std::conj(new_kp);
          a(k, q) = new_kq;
          a(q, k) = std::conj(new_kq);
        }

        // Accumulate eigenvectors: V <- V * J.
        for (std::size_t k = 0; k < n; ++k) {
          const cdouble vkp = v(k, p);
          const cdouble vkq = v(k, q);
          v(k, p) = c * vkp - std::conj(s) * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  if (std::sqrt(off_diagonal_mass(a)) > target) {
    throw ConvergenceError("eigen_hermitian_jacobi: no convergence after " +
                           std::to_string(options.max_iterations) + " sweeps");
  }

  for (std::size_t i = 0; i < n; ++i) {
    eig.values[i] = a(i, i).real();
  }
  sort_eigenpairs(eig);
  return eig;
}

HermitianEigen eigen_hermitian(const CMatrix& a, EigenMethod method,
                               const EigenOptions& options) {
  switch (method) {
    case EigenMethod::Jacobi:
      return eigen_hermitian_jacobi(a, options);
    case EigenMethod::TridiagonalQL:
      return eigen_hermitian_ql(a, options);
  }
  throw ValueError("eigen_hermitian: unknown method");
}

CMatrix reconstruct(const HermitianEigen& eig) {
  const std::size_t n = eig.values.size();
  RFADE_EXPECTS(eig.vectors.rows() == n && eig.vectors.cols() == n,
                "reconstruct: inconsistent eigen result");
  CMatrix k(n, n, cdouble{});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cdouble acc{};
      for (std::size_t m = 0; m < n; ++m) {
        acc += eig.vectors(i, m) * eig.values[m] * std::conj(eig.vectors(j, m));
      }
      k(i, j) = acc;
    }
  }
  return k;
}

}  // namespace rfade::numeric
