#include "rfade/numeric/matrix_ops.hpp"

#include <algorithm>
#include <cmath>

namespace rfade::numeric {

namespace {

template <typename T>
Matrix<T> multiply_impl(const Matrix<T>& a, const Matrix<T>& b) {
  RFADE_EXPECTS(a.cols() == b.rows(), "multiply: inner dimensions differ");
  Matrix<T> c(a.rows(), b.cols(), T{});
  // i-k-j loop order: streams through b row-wise, friendly to row-major data.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) {
        continue;
      }
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

template <typename T>
std::vector<T> matvec_impl(const Matrix<T>& a, const std::vector<T>& x) {
  RFADE_EXPECTS(a.cols() == x.size(), "multiply: vector length mismatch");
  std::vector<T> y(a.rows(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    T acc{};
    for (std::size_t j = 0; j < a.cols(); ++j) {
      acc += a(i, j) * x[j];
    }
    y[i] = acc;
  }
  return y;
}

template <typename T>
double frobenius_impl(const Matrix<T>& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      sum += std::norm(cdouble(a(i, j)));
    }
  }
  return std::sqrt(sum);
}

}  // namespace

CMatrix to_complex(const RMatrix& a) {
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = cdouble(a(i, j), 0.0);
    }
  }
  return c;
}

RMatrix real_part(const CMatrix& a) {
  RMatrix r(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      r(i, j) = a(i, j).real();
    }
  }
  return r;
}

RMatrix imag_part(const CMatrix& a) {
  RMatrix r(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      r(i, j) = a(i, j).imag();
    }
  }
  return r;
}

CMatrix diag(const CVector& d) {
  CMatrix m(d.size(), d.size(), cdouble{});
  for (std::size_t i = 0; i < d.size(); ++i) {
    m(i, i) = d[i];
  }
  return m;
}

CMatrix diag(const RVector& d) {
  CMatrix m(d.size(), d.size(), cdouble{});
  for (std::size_t i = 0; i < d.size(); ++i) {
    m(i, i) = cdouble(d[i], 0.0);
  }
  return m;
}

CVector diagonal(const CMatrix& a) {
  RFADE_EXPECTS(a.is_square(), "diagonal: matrix must be square");
  CVector d(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    d[i] = a(i, i);
  }
  return d;
}

CMatrix multiply(const CMatrix& a, const CMatrix& b) {
  return multiply_impl(a, b);
}
RMatrix multiply(const RMatrix& a, const RMatrix& b) {
  return multiply_impl(a, b);
}
CVector multiply(const CMatrix& a, const CVector& x) {
  return matvec_impl(a, x);
}
RVector multiply(const RMatrix& a, const RVector& x) {
  return matvec_impl(a, x);
}

CMatrix add(const CMatrix& a, const CMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "add: shape mismatch");
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = a(i, j) + b(i, j);
    }
  }
  return c;
}

CMatrix subtract(const CMatrix& a, const CMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "subtract: shape mismatch");
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = a(i, j) - b(i, j);
    }
  }
  return c;
}

CMatrix scale(const CMatrix& a, cdouble alpha) {
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = alpha * a(i, j);
    }
  }
  return c;
}

CMatrix conjugate_transpose(const CMatrix& a) {
  CMatrix c(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(j, i) = std::conj(a(i, j));
    }
  }
  return c;
}

RMatrix transpose(const RMatrix& a) {
  RMatrix c(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(j, i) = a(i, j);
    }
  }
  return c;
}

CMatrix gram(const CMatrix& l) {
  CMatrix g(l.rows(), l.rows(), cdouble{});
  for (std::size_t i = 0; i < l.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      cdouble acc{};
      for (std::size_t k = 0; k < l.cols(); ++k) {
        acc += l(i, k) * std::conj(l(j, k));
      }
      g(i, j) = acc;
      g(j, i) = std::conj(acc);
    }
  }
  return g;
}

cdouble trace(const CMatrix& a) {
  RFADE_EXPECTS(a.is_square(), "trace: matrix must be square");
  cdouble t{};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    t += a(i, i);
  }
  return t;
}

double frobenius_norm(const CMatrix& a) { return frobenius_impl(a); }
double frobenius_norm(const RMatrix& a) { return frobenius_impl(a); }

double max_abs(const CMatrix& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j)));
    }
  }
  return m;
}

double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double max_abs_diff(const RMatrix& a, const RMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

bool is_hermitian(const CMatrix& a, double tol) {
  if (!a.is_square()) {
    return false;
  }
  const double scale_ref = std::max(1.0, max_abs(a));
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (std::abs(a(i, i).imag()) > tol * scale_ref) {
      return false;
    }
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - std::conj(a(j, i))) > tol * scale_ref) {
        return false;
      }
    }
  }
  return true;
}

CMatrix hermitian_part(const CMatrix& a) {
  RFADE_EXPECTS(a.is_square(), "hermitian_part: matrix must be square");
  CMatrix h(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      h(i, j) = 0.5 * (a(i, j) + std::conj(a(j, i)));
    }
  }
  return h;
}

}  // namespace rfade::numeric
