#include "rfade/numeric/matrix_ops.hpp"

#include <algorithm>
#include <cmath>

#include "rfade/support/simd.hpp"

namespace rfade::numeric {

namespace {

/// One row tile of the planar GEMM (m <= tile rows), multiversioned for
/// wider vectors; no clone enables FMA via its target set, and this TU is
/// compiled with -ffp-contract=off (see CMakeLists.txt) so the avx512f
/// clone — whose base feature set includes 512-bit FMA — cannot contract
/// either: every clone produces the bit pattern of the scalar mul/add
/// sequence.
RFADE_TARGET_CLONES_WIDE
void planar_gemm_tile(const double* __restrict a_re,
                      const double* __restrict a_im, std::size_t m,
                      std::size_t k, const double* __restrict b_re,
                      const double* __restrict b_im, std::size_t n,
                      double* __restrict c_re, double* __restrict c_im) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* brr = b_re + kk * n;
    const double* bri = b_im + kk * n;
    for (std::size_t t = 0; t < m; ++t) {
      const double ar = a_re[t * k + kk];
      const double ai = a_im[t * k + kk];
      double* crr = c_re + t * n;
      double* cri = c_im + t * n;
      for (std::size_t j = 0; j < n; ++j) {
        crr[j] += ar * brr[j] - ai * bri[j];
        cri[j] += ar * bri[j] + ai * brr[j];
      }
    }
  }
}

/// Float clone of planar_gemm_tile.  GCC's target_clones cannot be applied
/// to templates, so the float kernel is a separate plain function; it runs
/// twice the lanes per vector at every ISA level and, with contraction off
/// in this TU, reproduces the scalar float mul/add bit pattern in every
/// clone.
RFADE_TARGET_CLONES_WIDE
void planar_gemm_tile_f32(const float* __restrict a_re,
                          const float* __restrict a_im, std::size_t m,
                          std::size_t k, const float* __restrict b_re,
                          const float* __restrict b_im, std::size_t n,
                          float* __restrict c_re, float* __restrict c_im) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* brr = b_re + kk * n;
    const float* bri = b_im + kk * n;
    for (std::size_t t = 0; t < m; ++t) {
      const float ar = a_re[t * k + kk];
      const float ai = a_im[t * k + kk];
      float* crr = c_re + t * n;
      float* cri = c_im + t * n;
      for (std::size_t j = 0; j < n; ++j) {
        crr[j] += ar * brr[j] - ai * bri[j];
        cri[j] += ar * bri[j] + ai * brr[j];
      }
    }
  }
}

template <typename T>
Matrix<T> multiply_impl(const Matrix<T>& a, const Matrix<T>& b) {
  RFADE_EXPECTS(a.cols() == b.rows(), "multiply: inner dimensions differ");
  Matrix<T> c(a.rows(), b.cols(), T{});
  // i-k-j loop order: streams through b row-wise, friendly to row-major data.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) {
        continue;
      }
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

template <typename T>
std::vector<T> matvec_impl(const Matrix<T>& a, const std::vector<T>& x) {
  RFADE_EXPECTS(a.cols() == x.size(), "multiply: vector length mismatch");
  std::vector<T> y(a.rows(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    T acc{};
    for (std::size_t j = 0; j < a.cols(); ++j) {
      acc += a(i, j) * x[j];
    }
    y[i] = acc;
  }
  return y;
}

template <typename T>
double frobenius_impl(const Matrix<T>& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      sum += std::norm(cdouble(a(i, j)));
    }
  }
  return std::sqrt(sum);
}

}  // namespace

CMatrix to_complex(const RMatrix& a) {
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = cdouble(a(i, j), 0.0);
    }
  }
  return c;
}

RMatrix real_part(const CMatrix& a) {
  RMatrix r(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      r(i, j) = a(i, j).real();
    }
  }
  return r;
}

RMatrix imag_part(const CMatrix& a) {
  RMatrix r(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      r(i, j) = a(i, j).imag();
    }
  }
  return r;
}

RMatrix elementwise_abs(const CMatrix& a) {
  RMatrix r(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    r.data()[i] = std::abs(a.data()[i]);
  }
  return r;
}

CMatrix diag(const CVector& d) {
  CMatrix m(d.size(), d.size(), cdouble{});
  for (std::size_t i = 0; i < d.size(); ++i) {
    m(i, i) = d[i];
  }
  return m;
}

CMatrix diag(const RVector& d) {
  CMatrix m(d.size(), d.size(), cdouble{});
  for (std::size_t i = 0; i < d.size(); ++i) {
    m(i, i) = cdouble(d[i], 0.0);
  }
  return m;
}

CVector diagonal(const CMatrix& a) {
  RFADE_EXPECTS(a.is_square(), "diagonal: matrix must be square");
  CVector d(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    d[i] = a(i, i);
  }
  return d;
}

CMatrix multiply(const CMatrix& a, const CMatrix& b) {
  return multiply_impl(a, b);
}
RMatrix multiply(const RMatrix& a, const RMatrix& b) {
  return multiply_impl(a, b);
}
CVector multiply(const CMatrix& a, const CVector& x) {
  return matvec_impl(a, x);
}
RVector multiply(const RMatrix& a, const RVector& x) {
  return matvec_impl(a, x);
}

void multiply_block_raw(const cdouble* a, std::size_t m, std::size_t k,
                        const cdouble* b, std::size_t n, cdouble* c) {
  // Row-tile size: one tile of c (kRowTile x n) plus one row of b fit in L1
  // for every dimension rfade uses (n is the envelope count, <= a few
  // hundred).  Within a tile the kk loop is outermost, so each output
  // element accumulates its k-terms in ascending order — the bit pattern of
  // the naive dot product.
  constexpr std::size_t kRowTile = 64;
  for (std::size_t t0 = 0; t0 < m; t0 += kRowTile) {
    const std::size_t t1 = std::min(m, t0 + kRowTile);
    std::fill(c + t0 * n, c + t1 * n, cdouble{});
    for (std::size_t kk = 0; kk < k; ++kk) {
      const cdouble* brow = b + kk * n;
      for (std::size_t t = t0; t < t1; ++t) {
        const cdouble atk = a[t * k + kk];
        cdouble* crow = c + t * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += atk * brow[j];
        }
      }
    }
  }
}

void multiply_block_into(const CMatrix& a, const CMatrix& b, CMatrix& out) {
  RFADE_EXPECTS(a.cols() == b.rows(),
                "multiply_block: inner dimensions differ");
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    out = CMatrix(a.rows(), b.cols());
  }
  multiply_block_raw(a.data(), a.rows(), a.cols(), b.data(), b.cols(),
                     out.data());
}

CMatrix multiply_block(const CMatrix& a, const CMatrix& b) {
  CMatrix out;
  multiply_block_into(a, b, out);
  return out;
}

void multiply_block_planar(const double* a_re, const double* a_im,
                           std::size_t m, std::size_t k, const double* b_re,
                           const double* b_im, std::size_t n, cdouble* c) {
  constexpr std::size_t kRowTile = 64;
  std::vector<double> c_re(kRowTile * n);
  std::vector<double> c_im(kRowTile * n);
  for (std::size_t t0 = 0; t0 < m; t0 += kRowTile) {
    const std::size_t t1 = std::min(m, t0 + kRowTile);
    std::fill(c_re.begin(), c_re.begin() + (t1 - t0) * n, 0.0);
    std::fill(c_im.begin(), c_im.begin() + (t1 - t0) * n, 0.0);
    planar_gemm_tile(a_re + t0 * k, a_im + t0 * k, t1 - t0, k, b_re, b_im, n,
                     c_re.data(), c_im.data());
    for (std::size_t t = t0; t < t1; ++t) {
      const double* crr = c_re.data() + (t - t0) * n;
      const double* cri = c_im.data() + (t - t0) * n;
      cdouble* crow = c + t * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = cdouble(crr[j], cri[j]);
      }
    }
  }
}

void multiply_block_raw(const cfloat* a, std::size_t m, std::size_t k,
                        const cfloat* b, std::size_t n, cfloat* c) {
  // Mirror of the double kernel: kk outermost within each row tile, so the
  // k-terms of every output element accumulate in ascending order.
  constexpr std::size_t kRowTile = 64;
  for (std::size_t t0 = 0; t0 < m; t0 += kRowTile) {
    const std::size_t t1 = std::min(m, t0 + kRowTile);
    std::fill(c + t0 * n, c + t1 * n, cfloat{});
    for (std::size_t kk = 0; kk < k; ++kk) {
      const cfloat* brow = b + kk * n;
      for (std::size_t t = t0; t < t1; ++t) {
        const cfloat atk = a[t * k + kk];
        cfloat* crow = c + t * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += atk * brow[j];
        }
      }
    }
  }
}

void multiply_block_planar(const float* a_re, const float* a_im,
                           std::size_t m, std::size_t k, const float* b_re,
                           const float* b_im, std::size_t n, cfloat* c) {
  constexpr std::size_t kRowTile = 64;
  std::vector<float> c_re(kRowTile * n);
  std::vector<float> c_im(kRowTile * n);
  for (std::size_t t0 = 0; t0 < m; t0 += kRowTile) {
    const std::size_t t1 = std::min(m, t0 + kRowTile);
    std::fill(c_re.begin(), c_re.begin() + (t1 - t0) * n, 0.0f);
    std::fill(c_im.begin(), c_im.begin() + (t1 - t0) * n, 0.0f);
    planar_gemm_tile_f32(a_re + t0 * k, a_im + t0 * k, t1 - t0, k, b_re,
                         b_im, n, c_re.data(), c_im.data());
    for (std::size_t t = t0; t < t1; ++t) {
      const float* crr = c_re.data() + (t - t0) * n;
      const float* cri = c_im.data() + (t - t0) * n;
      cfloat* crow = c + t * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = cfloat(crr[j], cri[j]);
      }
    }
  }
}

namespace {

/// Crossfade kernel on the raw interleaved re/im doubles (std::complex
/// is array-layout-compatible), multiversioned like planar_gemm_tile; no
/// FMA in any clone (contract off for this TU), so every clone keeps the
/// scalar bit pattern w0*p + w1*c.
RFADE_TARGET_CLONES_WIDE
void crossfade_kernel(const double* __restrict w0,
                      const double* __restrict w1,
                      const double* __restrict prev,
                      const double* __restrict cur, std::size_t count,
                      double* __restrict out) {
  for (std::size_t i = 0; i < count; ++i) {
    const double a = w0[i];
    const double b = w1[i];
    out[2 * i] = a * prev[2 * i] + b * cur[2 * i];
    out[2 * i + 1] = a * prev[2 * i + 1] + b * cur[2 * i + 1];
  }
}

RFADE_TARGET_CLONES_WIDE
void scale_strided_kernel(const double* __restrict u, std::size_t count,
                          double scale, double* __restrict out,
                          std::size_t stride) {
  for (std::size_t l = 0; l < count; ++l) {
    out[l * stride] = u[2 * l] * scale;
    out[l * stride + 1] = u[2 * l + 1] * scale;
  }
}

RFADE_TARGET_CLONES_WIDE
void crossfade_kernel_f32(const float* __restrict w0,
                          const float* __restrict w1,
                          const float* __restrict prev,
                          const float* __restrict cur, std::size_t count,
                          float* __restrict out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float a = w0[i];
    const float b = w1[i];
    out[2 * i] = a * prev[2 * i] + b * cur[2 * i];
    out[2 * i + 1] = a * prev[2 * i + 1] + b * cur[2 * i + 1];
  }
}

RFADE_TARGET_CLONES_WIDE
void scale_strided_kernel_f32(const float* __restrict u, std::size_t count,
                              float scale, float* __restrict out,
                              std::size_t stride) {
  for (std::size_t l = 0; l < count; ++l) {
    out[l * stride] = u[2 * l] * scale;
    out[l * stride + 1] = u[2 * l + 1] * scale;
  }
}

}  // namespace

void crossfade_block(const double* fade_out, const double* fade_in,
                     const cdouble* previous, const cdouble* current,
                     std::size_t count, cdouble* out) {
  crossfade_kernel(fade_out, fade_in,
                   reinterpret_cast<const double*>(previous),
                   reinterpret_cast<const double*>(current), count,
                   reinterpret_cast<double*>(out));
}

void scale_into_strided(const cdouble* u, std::size_t count, double scale,
                        cdouble* out, std::size_t stride) {
  scale_strided_kernel(reinterpret_cast<const double*>(u), count, scale,
                       reinterpret_cast<double*>(out), 2 * stride);
}

void crossfade_block(const float* fade_out, const float* fade_in,
                     const cfloat* previous, const cfloat* current,
                     std::size_t count, cfloat* out) {
  crossfade_kernel_f32(fade_out, fade_in,
                       reinterpret_cast<const float*>(previous),
                       reinterpret_cast<const float*>(current), count,
                       reinterpret_cast<float*>(out));
}

void scale_into_strided(const cfloat* u, std::size_t count, float scale,
                        cfloat* out, std::size_t stride) {
  scale_strided_kernel_f32(reinterpret_cast<const float*>(u), count, scale,
                           reinterpret_cast<float*>(out), 2 * stride);
}

CMatrix add(const CMatrix& a, const CMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "add: shape mismatch");
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = a(i, j) + b(i, j);
    }
  }
  return c;
}

CMatrix subtract(const CMatrix& a, const CMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "subtract: shape mismatch");
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = a(i, j) - b(i, j);
    }
  }
  return c;
}

CMatrix scale(const CMatrix& a, cdouble alpha) {
  CMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(i, j) = alpha * a(i, j);
    }
  }
  return c;
}

CMatrix conjugate_transpose(const CMatrix& a) {
  CMatrix c(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(j, i) = std::conj(a(i, j));
    }
  }
  return c;
}

RMatrix transpose(const RMatrix& a) {
  RMatrix c(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c(j, i) = a(i, j);
    }
  }
  return c;
}

CMatrix gram(const CMatrix& l) {
  CMatrix g(l.rows(), l.rows(), cdouble{});
  for (std::size_t i = 0; i < l.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      cdouble acc{};
      for (std::size_t k = 0; k < l.cols(); ++k) {
        acc += l(i, k) * std::conj(l(j, k));
      }
      g(i, j) = acc;
      g(j, i) = std::conj(acc);
    }
  }
  return g;
}

cdouble trace(const CMatrix& a) {
  RFADE_EXPECTS(a.is_square(), "trace: matrix must be square");
  cdouble t{};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    t += a(i, i);
  }
  return t;
}

double frobenius_norm(const CMatrix& a) { return frobenius_impl(a); }
double frobenius_norm(const RMatrix& a) { return frobenius_impl(a); }

double max_abs(const CMatrix& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j)));
    }
  }
  return m;
}

double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

double max_abs_diff(const RMatrix& a, const RMatrix& b) {
  RFADE_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

bool is_hermitian(const CMatrix& a, double tol) {
  if (!a.is_square()) {
    return false;
  }
  const double scale_ref = std::max(1.0, max_abs(a));
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (std::abs(a(i, i).imag()) > tol * scale_ref) {
      return false;
    }
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - std::conj(a(j, i))) > tol * scale_ref) {
        return false;
      }
    }
  }
  return true;
}

CMatrix hermitian_part(const CMatrix& a) {
  RFADE_EXPECTS(a.is_square(), "hermitian_part: matrix must be square");
  CMatrix h(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      h(i, j) = 0.5 * (a(i, j) + std::conj(a(j, i)));
    }
  }
  return h;
}

}  // namespace rfade::numeric
