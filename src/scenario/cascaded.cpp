#include "rfade/scenario/cascaded.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/xoshiro.hpp"
#include "rfade/stats/covariance.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/parallel.hpp"

namespace rfade::scenario {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

core::PipelineOptions stage_pipeline_options(const CascadedOptions& options) {
  core::PipelineOptions pipeline;
  pipeline.block_size = options.block_size;
  pipeline.parallel = options.parallel;
  return pipeline;
}

numeric::CMatrix hadamard(const numeric::CMatrix& a,
                          const numeric::CMatrix& b) {
  numeric::CMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out(i, j) = a(i, j) * b(i, j);
    }
  }
  return out;
}

}  // namespace

std::uint64_t CascadedRayleighGenerator::stage_seed(std::uint64_t seed,
                                                    std::uint64_t stage) {
  // splitmix64 over stage substreams of the user seed: the two stages get
  // well-separated Philox keys, and neither collides with the raw seed a
  // plain SamplePipeline would use (splitmix64 advances its state by the
  // golden-ratio increment once before finalizing, so this hashes
  // seed + (stage + 1) * golden).
  std::uint64_t state = seed + stage * 0x9E3779B97F4A7C15ULL;
  return random::splitmix64(state);
}

CascadedRayleighGenerator::CascadedRayleighGenerator(
    std::shared_ptr<const core::ColoringPlan> first,
    std::shared_ptr<const core::ColoringPlan> second, CascadedOptions options)
    : first_(std::move(first), stage_pipeline_options(options)),
      second_(std::move(second), stage_pipeline_options(options)),
      options_(options) {
  RFADE_EXPECTS(first_.dimension() == second_.dimension(),
                "CascadedRayleighGenerator: stage dimensions must match");
  effective_ = hadamard(first_.plan().effective_covariance(),
                        second_.plan().effective_covariance());
}

CascadedRayleighGenerator::CascadedRayleighGenerator(
    numeric::CMatrix first_covariance, numeric::CMatrix second_covariance,
    CascadedOptions options)
    : CascadedRayleighGenerator(
          core::ColoringPlan::create(std::move(first_covariance),
                                     options.coloring),
          core::ColoringPlan::create(std::move(second_covariance),
                                     options.coloring),
          options) {}

stats::DoubleRayleighDistribution CascadedRayleighGenerator::branch_marginal(
    std::size_t j) const {
  RFADE_EXPECTS(j < dimension(), "branch_marginal: branch out of range");
  return stats::DoubleRayleighDistribution::from_gaussian_powers(
      first_.plan().effective_covariance()(j, j).real(),
      second_.plan().effective_covariance()(j, j).real());
}

std::vector<core::EnvelopeMarginal> CascadedRayleighGenerator::marginals()
    const {
  return core::make_marginals(
      dimension(), [this](std::size_t j) { return branch_marginal(j); });
}

double CascadedRayleighGenerator::envelope_mean(std::size_t j) const {
  RFADE_EXPECTS(j < dimension(), "envelope_mean: branch out of range");
  const double s1 = first_.plan().effective_covariance()(j, j).real();
  const double s2 = second_.plan().effective_covariance()(j, j).real();
  return 0.25 * kPi * std::sqrt(s1 * s2);
}

double CascadedRayleighGenerator::envelope_second_moment(std::size_t j) const {
  RFADE_EXPECTS(j < dimension(), "envelope_second_moment: branch out of range");
  return effective_(j, j).real();
}

double CascadedRayleighGenerator::envelope_variance(std::size_t j) const {
  const double mean = envelope_mean(j);
  return envelope_second_moment(j) - mean * mean;
}

double CascadedRayleighGenerator::envelope_fourth_moment(std::size_t j) const {
  const double m2 = envelope_second_moment(j);
  return 4.0 * m2 * m2;
}

numeric::CMatrix CascadedRayleighGenerator::sample_block(
    std::size_t count, std::uint64_t seed, std::uint64_t block_index) const {
  const numeric::CMatrix z1 =
      first_.sample_block(count, stage_seed(seed, 0), block_index);
  const numeric::CMatrix z2 =
      second_.sample_block(count, stage_seed(seed, 1), block_index);
  numeric::CMatrix out(count, dimension());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = z1.data()[i] * z2.data()[i];
  }
  return out;
}

numeric::CMatrix CascadedRayleighGenerator::sample_stream(
    std::size_t count, std::uint64_t seed) const {
  const std::size_t n = dimension();
  numeric::CMatrix out(count, n);
  const support::ChunkingOptions chunking{options_.block_size,
                                          !options_.parallel};
  support::parallel_for_chunked(
      count,
      [&](std::size_t begin, std::size_t end, std::size_t block) {
        const numeric::CMatrix piece = sample_block(end - begin, seed, block);
        std::copy(piece.data(), piece.data() + piece.size(),
                  out.data() + begin * n);
      },
      chunking);
  return out;
}

numeric::RMatrix CascadedRayleighGenerator::sample_envelope_stream(
    std::size_t count, std::uint64_t seed) const {
  return numeric::elementwise_abs(sample_stream(count, seed));
}

namespace {

/// Per-chunk accumulation for envelope_moment_diagnostics, merged in
/// chunk order.
struct CascadedChunkState {
  explicit CascadedChunkState(std::size_t dim)
      : covariance(dim), envelope(dim), envelope_power(dim) {}

  stats::CovarianceAccumulator covariance;
  std::vector<stats::RunningStats> envelope;
  /// Stats of r^2 — variance(r^2) + mean(r^2)^2 gives E[r^4] for the
  /// amount-of-fading diagnostic.
  std::vector<stats::RunningStats> envelope_power;
};

}  // namespace

CascadedMomentReport CascadedRayleighGenerator::envelope_moment_diagnostics(
    std::size_t samples, std::uint64_t seed) const {
  RFADE_EXPECTS(samples > 0,
                "envelope_moment_diagnostics: samples must be positive");
  const std::size_t n = dimension();
  const support::ChunkingOptions chunking{options_.block_size,
                                          !options_.parallel};
  const std::size_t chunks = support::chunk_count(samples, chunking);

  std::vector<CascadedChunkState> states;
  states.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    states.emplace_back(n);
  }

  support::parallel_for_chunked(
      samples,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        const numeric::CMatrix block = sample_block(end - begin, seed, chunk);
        CascadedChunkState& state = states[chunk];
        numeric::CVector z(n);
        for (std::size_t t = 0; t < block.rows(); ++t) {
          const numeric::cdouble* row = block.data() + t * n;
          z.assign(row, row + n);
          state.covariance.add(z);
          for (std::size_t j = 0; j < n; ++j) {
            const double r = std::abs(z[j]);
            state.envelope[j].add(r);
            state.envelope_power[j].add(r * r);
          }
        }
      },
      chunking);

  CascadedChunkState total(n);
  for (const CascadedChunkState& state : states) {
    total.covariance.merge(state.covariance);
    for (std::size_t j = 0; j < n; ++j) {
      total.envelope[j].merge(state.envelope[j]);
      total.envelope_power[j].merge(state.envelope_power[j]);
    }
  }

  CascadedMomentReport report;
  report.samples = samples;
  report.measured_mean.resize(n);
  report.expected_mean.resize(n);
  report.mean_rel_error.resize(n);
  report.measured_second_moment.resize(n);
  report.expected_second_moment.resize(n);
  report.second_moment_rel_error.resize(n);
  report.measured_amount_of_fading.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    report.measured_mean[j] = total.envelope[j].mean();
    report.expected_mean[j] = envelope_mean(j);
    report.mean_rel_error[j] =
        std::abs(report.measured_mean[j] - report.expected_mean[j]) /
        report.expected_mean[j];
    const double m2 = total.envelope_power[j].mean();
    const double m4 = total.envelope_power[j].variance() + m2 * m2;
    report.measured_second_moment[j] = m2;
    report.expected_second_moment[j] = envelope_second_moment(j);
    report.second_moment_rel_error[j] =
        std::abs(m2 - report.expected_second_moment[j]) /
        report.expected_second_moment[j];
    report.measured_amount_of_fading[j] = m4 / (m2 * m2) - 1.0;
    report.max_mean_rel_error =
        std::max(report.max_mean_rel_error, report.mean_rel_error[j]);
    report.max_second_moment_rel_error =
        std::max(report.max_second_moment_rel_error,
                 report.second_moment_rel_error[j]);
  }
  report.covariance_rel_error = stats::relative_frobenius_error(
      total.covariance.covariance(), effective_);
  return report;
}

core::EnvelopeValidationReport validate_cascaded(
    const CascadedRayleighGenerator& generator,
    const core::ValidationOptions& options) {
  return core::validate_envelope_source(
      generator.dimension(),
      [&generator](std::size_t count, std::uint64_t seed,
                   std::uint64_t block_index) {
        return numeric::elementwise_abs(
            generator.sample_block(count, seed, block_index));
      },
      generator.marginals(), options);
}

}  // namespace rfade::scenario
