#include "rfade/scenario/timevarying/cascaded_realtime.hpp"

#include <cmath>
#include <utility>

#include "rfade/doppler/filter.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/scenario/cascaded.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::scenario {

namespace {

core::RealTimeOptions stage_realtime_options(
    const CascadedRealTimeOptions& options, double doppler) {
  core::RealTimeOptions stage;
  stage.idft_size = options.idft_size;
  stage.normalized_doppler = doppler;
  stage.input_variance_per_dim = options.input_variance_per_dim;
  stage.variance_handling = options.variance_handling;
  stage.parallel_branches = options.parallel_branches;
  return stage;
}

core::FadingStreamOptions stage_stream_options(
    const CascadedRealTimeOptions& options, double doppler,
    std::uint64_t stage) {
  core::FadingStreamOptions stream;
  stream.backend = options.backend;
  stream.idft_size = options.idft_size;
  stream.normalized_doppler = doppler;
  stream.input_variance_per_dim = options.input_variance_per_dim;
  stream.overlap = options.overlap;
  stream.variance_handling = options.variance_handling;
  stream.parallel_branches = options.parallel_branches;
  stream.seed = CascadedRealTimeGenerator::stage_seed(options.stream_seed,
                                                      stage);
  return stream;
}

numeric::CMatrix hadamard(const numeric::CMatrix& a,
                          const numeric::CMatrix& b) {
  numeric::CMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
  return out;
}

}  // namespace

std::uint64_t CascadedRealTimeGenerator::stage_seed(std::uint64_t seed,
                                                    std::uint64_t stage) {
  return CascadedRayleighGenerator::stage_seed(seed, stage);
}

CascadedRealTimeGenerator::CascadedRealTimeGenerator(
    std::shared_ptr<const core::ColoringPlan> first,
    std::shared_ptr<const core::ColoringPlan> second,
    CascadedRealTimeOptions options)
    : first_(first, stage_realtime_options(options, options.first_doppler)),
      second_(second, stage_realtime_options(options, options.second_doppler)),
      first_stream_(std::move(first),
                    stage_stream_options(options, options.first_doppler, 0)),
      second_stream_(std::move(second),
                     stage_stream_options(options, options.second_doppler,
                                          1)) {
  RFADE_EXPECTS(first_.dimension() == second_.dimension(),
                "CascadedRealTimeGenerator: stage dimensions must match");
  effective_ = hadamard(first_.effective_covariance(),
                        second_.effective_covariance());
}

CascadedRealTimeGenerator::CascadedRealTimeGenerator(
    numeric::CMatrix first_covariance, numeric::CMatrix second_covariance,
    CascadedRealTimeOptions options)
    : CascadedRealTimeGenerator(
          core::ColoringPlan::create(std::move(first_covariance),
                                     options.coloring),
          core::ColoringPlan::create(std::move(second_covariance),
                                     options.coloring),
          options) {}

numeric::CMatrix CascadedRealTimeGenerator::generate_block(
    std::uint64_t seed, std::uint64_t block_index) const {
  // Each stage draws its block from its own Philox stream keyed by
  // (stage seed, block_index + 1) — the same disjointness scheme as the
  // instant-mode cascade, now through the shared stream layer's keyed
  // path, so it holds for every backend.
  const numeric::CMatrix z1 =
      first_stream_.generate_block(stage_seed(seed, 0), block_index);
  const numeric::CMatrix z2 =
      second_stream_.generate_block(stage_seed(seed, 1), block_index);
  return hadamard(z1, z2);
}

numeric::RMatrix CascadedRealTimeGenerator::generate_envelope_block(
    std::uint64_t seed, std::uint64_t block_index) const {
  return numeric::elementwise_abs(generate_block(seed, block_index));
}

numeric::CMatrix CascadedRealTimeGenerator::next_block() {
  return hadamard(first_stream_.next_block(), second_stream_.next_block());
}

numeric::RMatrix CascadedRealTimeGenerator::next_envelope_block() {
  return numeric::elementwise_abs(next_block());
}

void CascadedRealTimeGenerator::seek(std::uint64_t block_index) {
  first_stream_.seek(block_index);
  second_stream_.seek(block_index);
}

numeric::RVector
CascadedRealTimeGenerator::theoretical_normalized_autocorrelation(
    std::size_t max_lag) const {
  const numeric::RVector rho1 = doppler::theoretical_normalized_autocorrelation(
      first_.branch().filter(), max_lag);
  const numeric::RVector rho2 = doppler::theoretical_normalized_autocorrelation(
      second_.branch().filter(), max_lag);
  numeric::RVector product(max_lag + 1);
  for (std::size_t d = 0; d <= max_lag; ++d) {
    product[d] = rho1[d] * rho2[d];
  }
  return product;
}

stats::DoubleRayleighDistribution CascadedRealTimeGenerator::branch_marginal(
    std::size_t j) const {
  RFADE_EXPECTS(j < dimension(),
                "CascadedRealTimeGenerator: branch index out of range");
  return stats::DoubleRayleighDistribution::from_gaussian_powers(
      first_.effective_covariance()(j, j).real(),
      second_.effective_covariance()(j, j).real());
}

std::vector<core::EnvelopeMarginal> CascadedRealTimeGenerator::marginals()
    const {
  return core::make_marginals(
      dimension(), [this](std::size_t j) { return branch_marginal(j); });
}

}  // namespace rfade::scenario
