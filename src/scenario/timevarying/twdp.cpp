#include "rfade/scenario/timevarying/twdp.hpp"

#include <cmath>
#include <complex>
#include <span>
#include <utility>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/xoshiro.hpp"
#include "rfade/service/channel_spec.hpp"
#include "rfade/support/contracts.hpp"
#include "rfade/support/parallel.hpp"

namespace rfade::scenario {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

core::PipelineOptions diffuse_pipeline_options(const TwdpOptions& options) {
  core::PipelineOptions pipeline;
  pipeline.block_size = options.block_size;
  pipeline.parallel = options.parallel;
  return pipeline;
}

}  // namespace

TwdpSpec::TwdpSpec(numeric::CMatrix diffuse, std::vector<TwdpBranch> branches)
    : diffuse_(std::move(diffuse)), branches_(std::move(branches)) {
  RFADE_EXPECTS(diffuse_.is_square() && diffuse_.rows() > 0,
                "TwdpSpec: diffuse covariance must be square, non-empty");
  RFADE_EXPECTS(branches_.size() == diffuse_.rows(),
                "TwdpSpec: one TwdpBranch per envelope required");
  for (const TwdpBranch& branch : branches_) {
    RFADE_EXPECTS(std::isfinite(branch.k_factor) && branch.k_factor >= 0.0,
                  "TwdpSpec: K-factor must be finite and non-negative");
    RFADE_EXPECTS(std::isfinite(branch.delta) && branch.delta >= 0.0 &&
                      branch.delta <= 1.0,
                  "TwdpSpec: Delta must be in [0, 1]");
    RFADE_EXPECTS(std::isfinite(branch.phase1) && std::isfinite(branch.phase2),
                  "TwdpSpec: wave phases must be finite");
    if (branch.k_factor > 0.0) {
      has_specular_ = true;
    }
  }
}

TwdpSpec TwdpSpec::uniform(numeric::CMatrix diffuse_covariance,
                           double k_factor, double delta) {
  const std::size_t n = diffuse_covariance.rows();
  return TwdpSpec(
      std::move(diffuse_covariance),
      std::vector<TwdpBranch>(n, TwdpBranch{k_factor, delta, 0.0, 0.0}));
}

TwdpSpec TwdpSpec::per_branch(numeric::CMatrix diffuse_covariance,
                              std::vector<TwdpBranch> branches) {
  return TwdpSpec(std::move(diffuse_covariance), std::move(branches));
}

std::shared_ptr<const core::ColoringPlan> TwdpSpec::build_plan(
    core::ColoringOptions options) const {
  return core::ColoringPlan::create(diffuse_, options);
}

TwdpSpec::SpecularWaves TwdpSpec::specular_waves(
    const core::ColoringPlan& plan) const {
  RFADE_EXPECTS(plan.dimension() == dimension(),
                "TwdpSpec: plan dimension mismatch");
  SpecularWaves waves;
  waves.first.resize(dimension());
  waves.second.resize(dimension());
  for (std::size_t j = 0; j < dimension(); ++j) {
    const TwdpBranch& branch = branches_[j];
    const double diffuse_power = plan.effective_covariance()(j, j).real();
    // v_{1,2}^2 = (K K_bar_jj / 2)(1 +- sqrt(1 - Delta^2)).
    const double specular_power = branch.k_factor * diffuse_power;
    const double split =
        std::sqrt(std::max(0.0, 1.0 - branch.delta * branch.delta));
    const double v1 = std::sqrt(0.5 * specular_power * (1.0 + split));
    const double v2 = std::sqrt(0.5 * specular_power * (1.0 - split));
    waves.first[j] = std::polar(v1, branch.phase1);
    waves.second[j] = std::polar(v2, branch.phase2);
  }
  return waves;
}

core::MeanSource TwdpSpec::realtime_mean(const core::ColoringPlan& plan,
                                         double first_wave_doppler,
                                         double second_wave_doppler) const {
  // Documented preconditions hold on every branch, including K = 0 where
  // the mean vanishes — a unit mix-up in a wave Doppler must fail here.
  for (const double f : {first_wave_doppler, second_wave_doppler}) {
    RFADE_EXPECTS(std::isfinite(f) && std::abs(f) <= 0.5,
                  "TwdpSpec: wave Doppler must be finite with |f| <= 0.5");
  }
  RFADE_EXPECTS(plan.dimension() == dimension(),
                "TwdpSpec: plan dimension mismatch");
  if (!has_specular_) {
    return {};
  }
  SpecularWaves waves = specular_waves(plan);
  return core::MeanSource::phasor_sum(
      {core::MeanPhasorTerm{std::move(waves.first), first_wave_doppler},
       core::MeanPhasorTerm{std::move(waves.second), second_wave_doppler}});
}

stats::TwdpDistribution TwdpSpec::branch_marginal(
    const core::ColoringPlan& plan, std::size_t j) const {
  RFADE_EXPECTS(plan.dimension() == dimension(),
                "TwdpSpec: plan dimension mismatch");
  RFADE_EXPECTS(j < dimension(), "TwdpSpec: branch index out of range");
  const double diffuse_power = plan.effective_covariance()(j, j).real();
  return stats::TwdpDistribution::from_parameters(
      branches_[j].k_factor, branches_[j].delta, diffuse_power);
}

std::vector<core::EnvelopeMarginal> TwdpSpec::marginals(
    const core::ColoringPlan& plan) const {
  return core::make_marginals(
      dimension(),
      [&](std::size_t j) { return branch_marginal(plan, j); });
}

std::uint64_t TwdpGenerator::phase_seed(std::uint64_t seed) {
  // splitmix64 over a fixed tweak keeps the wave-phase Philox keys
  // disjoint from the diffuse draw keys (the raw seed) and from the
  // cascade's stage seeds (splitmix of seed + stage * golden).
  std::uint64_t state = seed ^ 0x7D0B5ED4A11CE5ULL;
  return random::splitmix64(state);
}

TwdpGenerator::TwdpGenerator(std::shared_ptr<const core::ColoringPlan> plan,
                             TwdpSpec spec, TwdpOptions options)
    : pipeline_(std::move(plan), diffuse_pipeline_options(options)),
      spec_(std::move(spec)),
      options_(options) {
  RFADE_EXPECTS(spec_.dimension() == pipeline_.dimension(),
                "TwdpGenerator: spec dimension must match the plan "
                "dimension");
  if (spec_.has_specular()) {
    TwdpSpec::SpecularWaves waves = spec_.specular_waves(pipeline_.plan());
    first_wave_ = std::move(waves.first);
    second_wave_ = std::move(waves.second);
    for (const numeric::cdouble& v : second_wave_) {
      if (v != numeric::cdouble{}) {
        second_wave_active_ = true;
        break;
      }
    }
  }
}

// Spec entry point: a thin wrapper over the canonical ChannelSpec path —
// the diffuse plan comes out of compile() (and therefore benefits from
// PlanCache sharing when the same scenario is also served), then the
// plan-sharing constructor runs unchanged.  compile()->plan() is the
// same ColoringPlan::create(diffuse, coloring) product as the historical
// spec.build_plan(coloring), so the output is bit-identical.
TwdpGenerator::TwdpGenerator(TwdpSpec spec, TwdpOptions options)
    : TwdpGenerator(service::ChannelSpec::Builder()
                        .twdp(spec.diffuse_covariance(), spec.branches())
                        .coloring(options.coloring)
                        .block_size(options.block_size)
                        .parallel(options.parallel)
                        .instant()
                        .build()
                        .compile()
                        ->plan(),
                    spec, options) {}

void TwdpGenerator::add_waves(std::size_t count, std::uint64_t seed,
                              std::uint64_t block_index,
                              numeric::cdouble* out) const {
  if (!spec_.has_specular()) {
    // K = 0: no wave pass, no phase stream — bit-identical to the plain
    // Rayleigh batched path.
    return;
  }
  const std::size_t n = dimension();
  random::Rng phases = random::block_substream(phase_seed(seed), block_index);
  if (!second_wave_active_) {
    // Delta = 0 everywhere: a single wave per row (random-phase Rician);
    // skip the second rotation and its add-zeros pass entirely.
    for (std::size_t t = 0; t < count; ++t) {
      const numeric::cdouble rot1 =
          std::polar(1.0, kTwoPi * phases.uniform01());
      numeric::cdouble* row = out + t * n;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] += first_wave_[j] * rot1;
      }
    }
    return;
  }
  for (std::size_t t = 0; t < count; ++t) {
    // One phase pair per draw, shared by all branches (the two physical
    // waves are common; per-branch offsets are folded into the complex
    // amplitudes).
    const numeric::cdouble rot1 = std::polar(1.0, kTwoPi * phases.uniform01());
    const numeric::cdouble rot2 = std::polar(1.0, kTwoPi * phases.uniform01());
    numeric::cdouble* row = out + t * n;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] += first_wave_[j] * rot1 + second_wave_[j] * rot2;
    }
  }
}

numeric::CMatrix TwdpGenerator::sample_block(std::size_t count,
                                             std::uint64_t seed,
                                             std::uint64_t block_index) const {
  numeric::CMatrix block = pipeline_.sample_block(count, seed, block_index);
  add_waves(count, seed, block_index, block.data());
  return block;
}

numeric::CMatrix TwdpGenerator::sample_stream(std::size_t count,
                                              std::uint64_t seed) const {
  const std::size_t n = dimension();
  numeric::CMatrix out(count, n);
  const support::ChunkingOptions chunking{options_.block_size,
                                          !options_.parallel};
  support::parallel_for_chunked(
      count,
      [&](std::size_t begin, std::size_t end, std::size_t block) {
        // Zero-copy: diffuse rows land straight in the output and the
        // wave pass runs in place — no per-chunk temporary.
        numeric::cdouble* rows = out.data() + begin * n;
        pipeline_.sample_block_into(
            end - begin, seed, block, block * options_.block_size,
            std::span<numeric::cdouble>(rows, (end - begin) * n));
        add_waves(end - begin, seed, block, rows);
      },
      chunking);
  return out;
}

numeric::RMatrix TwdpGenerator::sample_envelope_stream(
    std::size_t count, std::uint64_t seed) const {
  return numeric::elementwise_abs(sample_stream(count, seed));
}

core::EnvelopeValidationReport validate_twdp(
    const TwdpGenerator& generator, const core::ValidationOptions& options) {
  return core::validate_envelope_source(
      generator.dimension(),
      [&generator](std::size_t count, std::uint64_t seed,
                   std::uint64_t block_index) {
        return numeric::elementwise_abs(
            generator.sample_block(count, seed, block_index));
      },
      generator.marginals(), options);
}

core::FadingStream twdp_fading_stream(
    std::shared_ptr<const core::ColoringPlan> plan, const TwdpSpec& spec,
    double first_wave_doppler, double second_wave_doppler,
    core::FadingStreamOptions options) {
  RFADE_EXPECTS(plan != nullptr, "twdp_fading_stream: plan must not be null");
  RFADE_EXPECTS(plan->dimension() == spec.dimension(),
                "twdp_fading_stream: plan dimension must match the spec");
  // The wave pair rides the stream's mean hook; realtime_mean validates
  // the wave Dopplers and collapses to the zero mean when K = 0, so a
  // pure-Rayleigh spec takes the meanless fast path bit-for-bit.
  options.los_mean =
      spec.realtime_mean(*plan, first_wave_doppler, second_wave_doppler);
  return core::FadingStream(std::move(plan), std::move(options));
}

}  // namespace rfade::scenario
