#include "rfade/scenario/scenario_spec.hpp"

#include <cmath>
#include <utility>

#include "rfade/support/contracts.hpp"

namespace rfade::scenario {

ScenarioSpec::ScenarioSpec(numeric::CMatrix diffuse,
                           std::vector<RicianBranch> branches)
    : diffuse_(std::move(diffuse)), branches_(std::move(branches)) {
  RFADE_EXPECTS(diffuse_.is_square() && diffuse_.rows() > 0,
                "ScenarioSpec: diffuse covariance must be square, non-empty");
  RFADE_EXPECTS(branches_.size() == diffuse_.rows(),
                "ScenarioSpec: one RicianBranch per envelope required");
  for (const RicianBranch& branch : branches_) {
    RFADE_EXPECTS(std::isfinite(branch.k_factor) && branch.k_factor >= 0.0,
                  "ScenarioSpec: K-factor must be finite and non-negative");
    RFADE_EXPECTS(std::isfinite(branch.los_phase),
                  "ScenarioSpec: LOS phase must be finite");
    if (branch.k_factor > 0.0) {
      has_los_ = true;
    }
  }
}

ScenarioSpec ScenarioSpec::rayleigh(numeric::CMatrix diffuse_covariance) {
  const std::size_t n = diffuse_covariance.rows();
  return ScenarioSpec(std::move(diffuse_covariance),
                      std::vector<RicianBranch>(n));
}

ScenarioSpec ScenarioSpec::rician(numeric::CMatrix diffuse_covariance,
                                  double k_factor, double los_phase) {
  const std::size_t n = diffuse_covariance.rows();
  return ScenarioSpec(
      std::move(diffuse_covariance),
      std::vector<RicianBranch>(n, RicianBranch{k_factor, los_phase}));
}

ScenarioSpec ScenarioSpec::rician(numeric::CMatrix diffuse_covariance,
                                  std::vector<RicianBranch> branches) {
  return ScenarioSpec(std::move(diffuse_covariance), std::move(branches));
}

std::shared_ptr<const core::ColoringPlan> ScenarioSpec::build_plan(
    core::ColoringOptions options) const {
  return core::ColoringPlan::create(diffuse_, options);
}

numeric::CVector ScenarioSpec::los_mean(const core::ColoringPlan& plan) const {
  RFADE_EXPECTS(plan.dimension() == dimension(),
                "ScenarioSpec: plan dimension mismatch");
  if (!has_los_) {
    return {};
  }
  numeric::CVector mean(dimension());
  for (std::size_t j = 0; j < dimension(); ++j) {
    const double diffuse_power = plan.effective_covariance()(j, j).real();
    const double amplitude =
        std::sqrt(branches_[j].k_factor * diffuse_power);
    mean[j] = std::polar(amplitude, branches_[j].los_phase);
  }
  return mean;
}

core::MeanSource ScenarioSpec::doppler_los_mean(
    const core::ColoringPlan& plan, double normalized_los_doppler) const {
  // Enforce the documented preconditions on every branch — a bad Doppler
  // must be rejected here even when K = 0 makes the mean vanish, not
  // later when someone flips a K-factor on.
  RFADE_EXPECTS(std::isfinite(normalized_los_doppler) &&
                    std::abs(normalized_los_doppler) <= 0.5,
                "ScenarioSpec: LOS Doppler must be finite with |f| <= 0.5");
  RFADE_EXPECTS(plan.dimension() == dimension(),
                "ScenarioSpec: plan dimension mismatch");
  if (!has_los_) {
    return {};
  }
  return core::MeanSource::doppler_phasor(los_mean(plan),
                                          normalized_los_doppler);
}

core::SamplePipeline ScenarioSpec::make_pipeline(
    std::shared_ptr<const core::ColoringPlan> plan,
    core::PipelineOptions options) const {
  RFADE_EXPECTS(plan != nullptr, "ScenarioSpec: plan must not be null");
  options.mean_offset = los_mean(*plan);
  return core::SamplePipeline(std::move(plan), options);
}

stats::RicianDistribution ScenarioSpec::branch_marginal(
    const core::ColoringPlan& plan, std::size_t j) const {
  RFADE_EXPECTS(plan.dimension() == dimension(),
                "ScenarioSpec: plan dimension mismatch");
  RFADE_EXPECTS(j < dimension(), "ScenarioSpec: branch index out of range");
  const double diffuse_power = plan.effective_covariance()(j, j).real();
  return stats::RicianDistribution::from_k_factor(branches_[j].k_factor,
                                                  diffuse_power);
}

std::vector<core::EnvelopeMarginal> ScenarioSpec::marginals(
    const core::ColoringPlan& plan) const {
  return core::make_marginals(
      dimension(),
      [&](std::size_t j) { return branch_marginal(plan, j); });
}

core::EnvelopeValidationReport validate_scenario(
    const ScenarioSpec& spec, std::shared_ptr<const core::ColoringPlan> plan,
    const core::ValidationOptions& options) {
  RFADE_EXPECTS(plan != nullptr, "validate_scenario: plan must not be null");
  const std::vector<core::EnvelopeMarginal> marginals =
      spec.marginals(*plan);
  const core::SamplePipeline pipeline = spec.make_pipeline(std::move(plan));
  return core::validate_envelopes(pipeline, marginals, options);
}

}  // namespace rfade::scenario
