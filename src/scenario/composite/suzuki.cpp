#include "rfade/scenario/composite/suzuki.hpp"

#include <cmath>
#include <utility>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/service/channel_spec.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::scenario::composite {

namespace {

std::shared_ptr<const ShadowingDesign> make_design(
    const std::shared_ptr<const core::ColoringPlan>& plan,
    ShadowingSpec spec) {
  RFADE_EXPECTS(plan != nullptr, "SuzukiGenerator: plan must not be null");
  return std::make_shared<const ShadowingDesign>(plan->dimension(),
                                                 std::move(spec));
}

}  // namespace

// Covariance entry point: a thin wrapper over the canonical ChannelSpec
// path — the compiled channel carries the exact generator this
// constructor used to hand-assemble (same plan, same shadowing design,
// same options), so the copy is bit-identical to the historical path.
SuzukiGenerator::SuzukiGenerator(numeric::CMatrix diffuse_covariance,
                                 ShadowingSpec shadowing,
                                 SuzukiOptions options)
    : SuzukiGenerator(service::ChannelSpec::Builder()
                          .suzuki(std::move(diffuse_covariance),
                                  std::move(shadowing))
                          .coloring(options.coloring)
                          .block_size(options.block_size)
                          .parallel(options.parallel)
                          .instant()
                          .build()
                          .compile()
                          ->suzuki_generator()) {}

SuzukiGenerator::SuzukiGenerator(std::shared_ptr<const core::ColoringPlan> plan,
                                 ShadowingSpec shadowing,
                                 SuzukiOptions options)
    : plan_(std::move(plan)),
      shadowing_(make_design(plan_, std::move(shadowing))),
      options_(options) {}

core::GainSource SuzukiGenerator::shadowing_gain(std::uint64_t seed) const {
  return core::GainSource::dynamic(
      std::make_shared<const ShadowingProcess>(shadowing_, seed));
}

core::SamplePipeline SuzukiGenerator::make_pipeline(
    std::uint64_t seed) const {
  core::PipelineOptions pipeline;
  pipeline.block_size = options_.block_size;
  pipeline.parallel = options_.parallel;
  pipeline.gain = shadowing_gain(seed);
  return core::SamplePipeline(plan_, pipeline);
}

numeric::CMatrix SuzukiGenerator::sample_block(
    std::size_t count, std::uint64_t seed, std::uint64_t block_index) const {
  return make_pipeline(seed).sample_block(count, seed, block_index);
}

numeric::CMatrix SuzukiGenerator::sample_stream(std::size_t count,
                                                std::uint64_t seed) const {
  return make_pipeline(seed).sample_stream(count, seed);
}

numeric::RMatrix SuzukiGenerator::sample_envelope_stream(
    std::size_t count, std::uint64_t seed) const {
  return numeric::elementwise_abs(sample_stream(count, seed));
}

core::FadingStream SuzukiGenerator::make_stream(
    core::FadingStreamOptions options) const {
  options.gain = shadowing_gain(options.seed);
  return core::FadingStream(plan_, options);
}

stats::SuzukiDistribution SuzukiGenerator::branch_marginal(
    std::size_t j) const {
  RFADE_EXPECTS(j < dimension(), "SuzukiGenerator: branch index out of range");
  const double power = plan_->effective_covariance()(j, j).real();
  return stats::SuzukiDistribution::from_gaussian_power(
      power, shadowing_->spec().mean_db, shadowing_->effective_sigma_db(j));
}

std::vector<core::EnvelopeMarginal> SuzukiGenerator::marginals() const {
  return core::make_marginals(
      dimension(), [this](std::size_t j) { return branch_marginal(j); });
}

core::EnvelopeValidationReport validate_suzuki(
    const SuzukiGenerator& generator, const core::ValidationOptions& options,
    std::size_t instant_stride) {
  RFADE_EXPECTS(instant_stride >= 1,
                "validate_suzuki: instant_stride must be >= 1");
  const std::vector<core::EnvelopeMarginal> marginals = generator.marginals();
  if (instant_stride == 1) {
    return core::validate_envelope_source(
        generator.dimension(),
        [&generator](std::size_t count, std::uint64_t seed,
                     std::uint64_t block_index) {
          return numeric::elementwise_abs(
              generator.sample_block(count, seed, block_index));
        },
        marginals, options);
  }
  // Thinned source: draw count * stride rows at the chunk's absolute
  // instant offset and keep every stride-th — still a pure function of
  // (seed, block index), but retained samples sit `stride` instants
  // apart so the shadowing between them has decayed.
  const std::size_t chunk = options.chunk_size;
  return core::validate_envelope_source(
      generator.dimension(),
      [&generator, instant_stride, chunk](std::size_t count,
                                          std::uint64_t seed,
                                          std::uint64_t block_index) {
        const std::size_t dense = count * instant_stride;
        const numeric::CMatrix z =
            generator.make_pipeline(seed).sample_block(
                dense, seed, block_index,
                block_index * chunk * instant_stride);
        numeric::RMatrix envelopes(count, z.cols());
        for (std::size_t t = 0; t < count; ++t) {
          for (std::size_t j = 0; j < z.cols(); ++j) {
            envelopes(t, j) = std::abs(z(t * instant_stride, j));
          }
        }
        return envelopes;
      },
      marginals, options);
}

}  // namespace rfade::scenario::composite
