#include "rfade/scenario/composite/copula.hpp"

#include <cmath>
#include <utility>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/stats/distributions.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::scenario::composite {

namespace {

/// Largest x the copula variable is evaluated at: beyond it
/// u = 1 - e^{-x} is 1 to double round-off (probability < 1e-16), so the
/// quantile argument is clamped to the largest double below 1.
constexpr double kMaxExponential = 45.0;

double clamped_uniform(double x) {
  const double u = -std::expm1(-x);
  return u < 1.0 ? u : std::nextafter(1.0, 0.0);
}

/// Laguerre coefficients c_k = int_0^inf g(x) L_k(x) e^{-x} dx of the
/// standardized transform g(x) = F^{-1}(1 - e^{-x}), by composite
/// Simpson in t = sqrt(x) (the substitution softens the x^{1/(2m)}
/// behaviour of Nakagami quantiles at the origin).
std::vector<double> laguerre_coefficients(const CopulaMarginal& marginal,
                                          std::size_t terms,
                                          std::size_t panels) {
  const double t_max = std::sqrt(kMaxExponential);
  const double h = t_max / static_cast<double>(panels);
  std::vector<double> c(terms, 0.0);
  for (std::size_t i = 0; i <= panels; ++i) {
    const double t = static_cast<double>(i) * h;
    const double x = t * t;
    // Simpson weights 1, 4, 2, ..., 4, 1 (panels is forced even).
    const double w =
        (i == 0 || i == panels) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    const double g = marginal.quantile(clamped_uniform(x));
    const double factor = w * g * std::exp(-x) * 2.0 * t;
    // L_0 = 1, L_1 = 1 - x, k L_k = (2k-1-x) L_{k-1} - (k-1) L_{k-2}.
    double l_prev = 1.0;
    double l_curr = 1.0 - x;
    c[0] += factor;
    if (terms > 1) {
      c[1] += factor * l_curr;
    }
    for (std::size_t k = 2; k < terms; ++k) {
      const double kk = static_cast<double>(k);
      const double l_next =
          ((2.0 * kk - 1.0 - x) * l_curr - (kk - 1.0) * l_prev) / kk;
      l_prev = l_curr;
      l_curr = l_next;
      c[k] += factor * l_next;
    }
  }
  for (double& v : c) {
    v *= h / 3.0;
  }
  return c;
}

/// Downton-expansion envelope correlation for power correlation lambda.
double rho_from_lambda(double lambda, const std::vector<double>& ci,
                       const std::vector<double>& cj, double var_i,
                       double var_j) {
  // Horner in lambda over k = K-1 .. 1: sum_{k>=1} lambda^k c_k c_k'.
  double sum = 0.0;
  for (std::size_t k = ci.size(); k-- > 1;) {
    sum = ci[k] * cj[k] + lambda * sum;
  }
  sum *= lambda;
  return sum / std::sqrt(var_i * var_j);
}

core::PipelineOptions copula_pipeline_options(const CopulaOptions& options) {
  core::PipelineOptions pipeline;
  pipeline.block_size = options.block_size;
  pipeline.parallel = options.parallel;
  return pipeline;
}

}  // namespace

// --- CopulaMarginal ----------------------------------------------------------

CopulaMarginal CopulaMarginal::nakagami(double m, double omega) {
  const stats::NakagamiDistribution dist(m, omega);
  CopulaMarginal marginal;
  marginal.family_ = "nakagami";
  marginal.mean_ = dist.mean();
  marginal.variance_ = dist.variance();
  marginal.quantile_ = [dist](double p) { return dist.quantile(p); };
  marginal.cdf_ = [dist](double r) { return dist.cdf(r); };
  return marginal;
}

CopulaMarginal CopulaMarginal::weibull(double shape, double scale) {
  const stats::WeibullDistribution dist(shape, scale);
  CopulaMarginal marginal;
  marginal.family_ = "weibull";
  marginal.mean_ = dist.mean();
  marginal.variance_ = dist.variance();
  marginal.quantile_ = [dist](double p) { return dist.quantile(p); };
  marginal.cdf_ = [dist](double r) { return dist.cdf(r); };
  return marginal;
}

CopulaMarginal CopulaMarginal::rayleigh(double sigma_g_squared) {
  const auto dist =
      stats::RayleighDistribution::from_gaussian_power(sigma_g_squared);
  CopulaMarginal marginal;
  marginal.family_ = "rayleigh";
  marginal.mean_ = dist.mean();
  marginal.variance_ = dist.variance();
  marginal.quantile_ = [dist](double p) { return dist.quantile(p); };
  marginal.cdf_ = [dist](double r) { return dist.cdf(r); };
  return marginal;
}

// --- CopulaMarginalTransform -------------------------------------------------

namespace {

std::vector<std::vector<double>> build_laguerre(
    const std::vector<CopulaMarginal>& marginals,
    const CopulaOptions& options) {
  RFADE_EXPECTS(!marginals.empty(),
                "CopulaMarginalTransform: at least one marginal required");
  RFADE_EXPECTS(options.laguerre_terms >= 8,
                "CopulaMarginalTransform: laguerre_terms must be >= 8");
  RFADE_EXPECTS(options.quadrature_panels >= 64 &&
                    options.quadrature_panels % 2 == 0,
                "CopulaMarginalTransform: quadrature_panels must be even "
                "and >= 64");
  std::vector<std::vector<double>> tables;
  tables.reserve(marginals.size());
  for (const CopulaMarginal& marginal : marginals) {
    RFADE_EXPECTS(marginal.mean() > 0.0 && marginal.variance() > 0.0,
                  "CopulaMarginalTransform: marginal moments must be "
                  "positive");
    tables.push_back(laguerre_coefficients(marginal, options.laguerre_terms,
                                           options.quadrature_panels));
  }
  return tables;
}

numeric::RMatrix build_lambda(const numeric::RMatrix& target,
                              const std::vector<CopulaMarginal>& marginals,
                              const std::vector<std::vector<double>>& tables) {
  const std::size_t n = marginals.size();
  RFADE_EXPECTS(target.rows() == n && target.cols() == n,
                "CopulaMarginalTransform: envelope correlation must be "
                "N x N");
  for (std::size_t i = 0; i < n; ++i) {
    RFADE_EXPECTS(std::abs(target(i, i) - 1.0) <= 1e-9,
                  "CopulaMarginalTransform: target diagonal must be 1");
    for (std::size_t j = 0; j < n; ++j) {
      RFADE_EXPECTS(std::isfinite(target(i, j)),
                    "CopulaMarginalTransform: target entries must be finite");
      RFADE_EXPECTS(std::abs(target(i, j) - target(j, i)) <= 1e-9,
                    "CopulaMarginalTransform: target must be symmetric");
      if (i != j) {
        RFADE_EXPECTS(target(i, j) >= 0.0 && target(i, j) < 1.0,
                      "CopulaMarginalTransform: off-diagonal targets must "
                      "be in [0, 1) (the Gaussian copula cannot realise "
                      "negative or unit envelope correlation)");
      }
    }
  }
  numeric::RMatrix lambda(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    lambda(i, i) = 1.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double t = target(i, j);
      if (t == 0.0) {
        continue;
      }
      const double var_i = marginals[i].variance();
      const double var_j = marginals[j].variance();
      const double rho_max =
          rho_from_lambda(1.0, tables[i], tables[j], var_i, var_j);
      RFADE_EXPECTS(t < rho_max,
                    "CopulaMarginalTransform: target envelope correlation "
                    "exceeds the maximum reachable for this marginal pair");
      // Bisection on the strictly increasing Downton map.
      double lo = 0.0;
      double hi = 1.0;
      for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (rho_from_lambda(mid, tables[i], tables[j], var_i, var_j) < t) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      lambda(i, j) = lambda(j, i) = 0.5 * (lo + hi);
    }
  }
  return lambda;
}

numeric::CMatrix build_core_covariance(const numeric::RMatrix& lambda) {
  const std::size_t n = lambda.rows();
  numeric::CMatrix k(n, n, numeric::cdouble{});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      k(i, j) = numeric::cdouble(
          i == j ? 1.0 : std::sqrt(lambda(i, j)), 0.0);
    }
  }
  return k;
}

numeric::RVector effective_powers(const core::SamplePipeline& pipeline) {
  const numeric::CMatrix& k = pipeline.plan().effective_covariance();
  numeric::RVector powers(k.rows());
  for (std::size_t j = 0; j < k.rows(); ++j) {
    powers[j] = k(j, j).real();
  }
  return powers;
}

}  // namespace

CopulaMarginalTransform::CopulaMarginalTransform(
    numeric::RMatrix envelope_correlation,
    std::vector<CopulaMarginal> marginals, CopulaOptions options)
    : target_(std::move(envelope_correlation)),
      marginals_(std::move(marginals)),
      options_(options),
      laguerre_(build_laguerre(marginals_, options_)),
      lambda_(build_lambda(target_, marginals_, laguerre_)),
      core_covariance_(build_core_covariance(lambda_)),
      pipeline_(core::ColoringPlan::create(core_covariance_, options_.coloring),
                copula_pipeline_options(options_)),
      core_power_(effective_powers(pipeline_)) {}

const CopulaMarginal& CopulaMarginalTransform::marginal(std::size_t j) const {
  RFADE_EXPECTS(j < marginals_.size(),
                "CopulaMarginalTransform: branch index out of range");
  return marginals_[j];
}

double CopulaMarginalTransform::predistorted_power_correlation(
    std::size_t i, std::size_t j) const {
  RFADE_EXPECTS(i < dimension() && j < dimension(),
                "CopulaMarginalTransform: branch index out of range");
  return lambda_(i, j);
}

double CopulaMarginalTransform::pair_envelope_correlation(
    std::size_t i, std::size_t j, double gaussian_power_correlation) const {
  RFADE_EXPECTS(i < dimension() && j < dimension(),
                "CopulaMarginalTransform: branch index out of range");
  RFADE_EXPECTS(gaussian_power_correlation >= 0.0 &&
                    gaussian_power_correlation <= 1.0,
                "CopulaMarginalTransform: power correlation must be in "
                "[0, 1]");
  return rho_from_lambda(gaussian_power_correlation, laguerre_[i],
                         laguerre_[j], marginals_[i].variance(),
                         marginals_[j].variance());
}

numeric::RMatrix CopulaMarginalTransform::predicted_envelope_correlation()
    const {
  const std::size_t n = dimension();
  const numeric::CMatrix& k = pipeline_.plan().effective_covariance();
  numeric::RMatrix rho(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    rho(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double lambda =
          std::norm(k(i, j)) / (k(i, i).real() * k(j, j).real());
      rho(i, j) = rho(j, i) = pair_envelope_correlation(i, j, lambda);
    }
  }
  return rho;
}

void CopulaMarginalTransform::transform_block(const numeric::CMatrix& core,
                                              numeric::RMatrix& out) const {
  const std::size_t n = dimension();
  out = numeric::RMatrix(core.rows(), n);
  for (std::size_t t = 0; t < core.rows(); ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      const double x = std::norm(core(t, j)) / core_power_[j];
      out(t, j) = marginals_[j].quantile(clamped_uniform(x));
    }
  }
}

numeric::RMatrix CopulaMarginalTransform::sample_envelope_block(
    std::size_t count, std::uint64_t seed, std::uint64_t block_index) const {
  numeric::RMatrix out;
  transform_block(pipeline_.sample_block(count, seed, block_index), out);
  return out;
}

numeric::RMatrix CopulaMarginalTransform::sample_envelope_stream(
    std::size_t count, std::uint64_t seed) const {
  numeric::RMatrix out;
  transform_block(pipeline_.sample_stream(count, seed), out);
  return out;
}

std::vector<core::EnvelopeMarginal> CopulaMarginalTransform::marginals()
    const {
  return core::make_marginals(
      dimension(), [this](std::size_t j) { return marginals_[j]; });
}

core::EnvelopeValidationReport validate_copula(
    const CopulaMarginalTransform& transform,
    const core::ValidationOptions& options) {
  const std::vector<core::EnvelopeMarginal> marginals = transform.marginals();
  return core::validate_envelope_source(
      transform.dimension(),
      [&transform](std::size_t count, std::uint64_t seed,
                   std::uint64_t block_index) {
        return transform.sample_envelope_block(count, seed, block_index);
      },
      marginals, options);
}

}  // namespace rfade::scenario::composite
