#include "rfade/scenario/composite/shadowing.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/random/bulk_gaussian.hpp"
#include "rfade/random/xoshiro.hpp"
#include "rfade/support/contracts.hpp"

namespace rfade::scenario::composite {

namespace {

/// ln(10)/20, shared with the marginal so generated gains and
/// LognormalDistribution::from_db stay bit-exact against each other.
constexpr double kLn10Over20 = stats::LognormalDistribution::kDbToNaturalLog;

/// Hard cap on the FIR length — reached only for decorrelation
/// distances of ~300k+ node spacings, where the tail beyond the cap
/// carries < the truncation tolerance of the ACF anyway.
constexpr std::size_t kMaxTaps = std::size_t{1} << 15;

/// The white-tape seed is salted and split so a user reusing one seed
/// for the diffuse stream (block_substream / bulk fills on stream
/// block+1) and its shadowing never overlaps counter spaces, mirroring
/// BranchSourceDesign::input_seed.
std::uint64_t tape_seed(std::uint64_t seed) {
  std::uint64_t state = seed ^ 0x5AD0516A11C0FFEEULL;
  return random::splitmix64(state);
}

bool is_identity(const numeric::RMatrix& r) {
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t j = 0; j < r.cols(); ++j) {
      if (r(i, j) != (i == j ? 1.0 : 0.0)) {
        return false;
      }
    }
  }
  return true;
}

/// Unit-variance dB field S at coarse nodes [first_node,
/// first_node + count): out is count x N row-major.  Pure function of
/// (design, tape seed, node range) — the seekability the composite
/// stream modes rely on.
void node_field(const ShadowingDesign& design, std::uint64_t tape,
                std::uint64_t first_node, std::size_t count, double* out) {
  const std::size_t n = design.dimension();
  const std::size_t k = design.taps();
  const numeric::RVector& taps = design.taps_vector();
  const std::size_t white = count + k - 1;
  // Per-branch filtered tapes (complex so an arbitrary — possibly
  // complex — mixing matrix still yields the target real covariance:
  // E[Re(L f) Re(L f)^T] = Re(L L^H) for unit-variance i.i.d. re/im).
  thread_local std::vector<double> w_re;
  thread_local std::vector<double> w_im;
  thread_local std::vector<double> f_re;
  thread_local std::vector<double> f_im;
  if (w_re.size() < white) {
    w_re.resize(white);
    w_im.resize(white);
  }
  if (f_re.size() < count * n) {
    f_re.resize(count * n);
    f_im.resize(count * n);
  }
  const bool mixed = design.has_mixing();
  for (std::size_t i = 0; i < n; ++i) {
    // Branch tape i: the seekable bulk-Philox substream (tape, i + 1),
    // indexed by absolute node position.
    random::fill_complex_gaussians_planar(tape, i + 1, 2.0, first_node, white,
                                          w_re.data(), w_im.data());
    for (std::size_t t = 0; t < count; ++t) {
      double acc_re = 0.0;
      double acc_im = 0.0;
      // S_i(t) = sum_k h[k] w[t + K - 1 - k]: the truncated moving
      // average whose ACF is a^{|d|} up to the truncation tolerance.
      const double* wr = w_re.data() + t;
      const double* wi = w_im.data() + t;
      for (std::size_t j = 0; j < k; ++j) {
        acc_re += taps[j] * wr[k - 1 - j];
        if (mixed) {
          acc_im += taps[j] * wi[k - 1 - j];
        }
      }
      f_re[i * count + t] = acc_re;
      f_im[i * count + t] = acc_im;
    }
  }
  if (!mixed) {
    for (std::size_t t = 0; t < count; ++t) {
      for (std::size_t j = 0; j < n; ++j) {
        out[t * n + j] = f_re[j * count + t];
      }
    }
    return;
  }
  const numeric::CMatrix& l = design.mixing_matrix();
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        s += l(j, i).real() * f_re[i * count + t] -
             l(j, i).imag() * f_im[i * count + t];
      }
      out[t * n + j] = s;
    }
  }
}

}  // namespace

// --- ShadowingDesign ---------------------------------------------------------

ShadowingDesign::ShadowingDesign(std::size_t dimension, ShadowingSpec spec)
    : dim_(dimension), spec_(std::move(spec)) {
  RFADE_EXPECTS(dim_ >= 1, "ShadowingDesign: dimension must be >= 1");
  RFADE_EXPECTS(std::isfinite(spec_.sigma_db) && spec_.sigma_db > 0.0 &&
                    spec_.sigma_db <= 20.0,
                "ShadowingDesign: sigma_db must be in (0, 20] dB");
  RFADE_EXPECTS(std::isfinite(spec_.mean_db) &&
                    std::abs(spec_.mean_db) <= 40.0,
                "ShadowingDesign: |mean_db| must be <= 40 dB");
  RFADE_EXPECTS(std::isfinite(spec_.decorrelation_samples) &&
                    spec_.decorrelation_samples >= 1.0,
                "ShadowingDesign: decorrelation distance must be >= 1 "
                "sample");
  RFADE_EXPECTS(spec_.spacing >= 1, "ShadowingDesign: spacing must be >= 1");
  RFADE_EXPECTS(spec_.truncation_tolerance > 0.0 &&
                    spec_.truncation_tolerance <= 0.1,
                "ShadowingDesign: truncation tolerance must be in (0, 0.1]");

  alpha_ = std::exp(-static_cast<double>(spec_.spacing) /
                    spec_.decorrelation_samples);
  // Smallest K with a^K <= tolerance (capped): the FIR h[k] = c a^k then
  // realises rho(d) = a^d (1 - a^{2(K-d)}) / (1 - a^{2K}).
  const double raw =
      std::ceil(std::log(spec_.truncation_tolerance) / std::log(alpha_));
  const std::size_t k = std::min<std::size_t>(
      kMaxTaps, static_cast<std::size_t>(std::max(1.0, raw)));
  const double alpha_sq = alpha_ * alpha_;
  const double c = std::sqrt(
      (1.0 - alpha_sq) /
      (1.0 - std::pow(alpha_sq, static_cast<double>(k))));
  taps_.resize(k);
  double power = c;
  for (std::size_t j = 0; j < k; ++j) {
    taps_[j] = power;
    power *= alpha_;
  }

  const numeric::RMatrix& r = spec_.branch_correlation;
  if (r.size() == 0 || is_identity(r)) {
    effective_correlation_ = numeric::RMatrix(dim_, dim_, 0.0);
    for (std::size_t j = 0; j < dim_; ++j) {
      effective_correlation_(j, j) = 1.0;
    }
    return;
  }
  RFADE_EXPECTS(r.rows() == dim_ && r.cols() == dim_,
                "ShadowingDesign: branch correlation must be N x N");
  for (std::size_t i = 0; i < dim_; ++i) {
    RFADE_EXPECTS(std::abs(r(i, i) - 1.0) <= 1e-9,
                  "ShadowingDesign: branch correlation diagonal must be 1");
    for (std::size_t j = 0; j < dim_; ++j) {
      RFADE_EXPECTS(std::isfinite(r(i, j)) && std::abs(r(i, j)) <= 1.0 + 1e-12,
                    "ShadowingDesign: branch correlation entries must be in "
                    "[-1, 1]");
      RFADE_EXPECTS(std::abs(r(i, j) - r(j, i)) <= 1e-9,
                    "ShadowingDesign: branch correlation must be symmetric");
    }
  }
  // The process's own small coloring plan: PSD-force and factor R_s with
  // the exact machinery the paper applies to K (steps 3-5), then mix the
  // filtered tapes with L_s.
  const auto plan = core::ColoringPlan::create(numeric::to_complex(r));
  mixing_ = plan->coloring_matrix();
  effective_correlation_ = numeric::real_part(plan->effective_covariance());
}

double ShadowingDesign::effective_sigma_db(std::size_t j) const {
  RFADE_EXPECTS(j < dim_, "ShadowingDesign: branch index out of range");
  return spec_.sigma_db * std::sqrt(effective_correlation_(j, j));
}

stats::LognormalDistribution ShadowingDesign::gain_marginal(
    std::size_t j) const {
  return stats::LognormalDistribution::from_db(spec_.mean_db,
                                               effective_sigma_db(j));
}

// --- ShadowingProcess --------------------------------------------------------

ShadowingProcess::ShadowingProcess(
    std::shared_ptr<const ShadowingDesign> design, std::uint64_t seed)
    : design_(std::move(design)), seed_(seed) {
  RFADE_EXPECTS(design_ != nullptr,
                "ShadowingProcess: design must not be null");
}

ShadowingProcess::ShadowingProcess(std::size_t dimension, ShadowingSpec spec,
                                   std::uint64_t seed)
    : ShadowingProcess(
          std::make_shared<const ShadowingDesign>(dimension, std::move(spec)),
          seed) {}

void ShadowingProcess::node_gains(std::uint64_t first_node, std::size_t count,
                                  double* out) const {
  node_field(*design_, tape_seed(seed_), first_node, count, out);
  const double scale = design_->spec().sigma_db * kLn10Over20;
  const double offset = design_->spec().mean_db * kLn10Over20;
  const std::size_t total = count * design_->dimension();
  for (std::size_t i = 0; i < total; ++i) {
    out[i] = std::exp(offset + scale * out[i]);
  }
}

numeric::RVector ShadowingProcess::node_db(std::uint64_t node) const {
  numeric::RVector s(design_->dimension());
  node_field(*design_, tape_seed(seed_), node, 1, s.data());
  for (double& v : s) {
    v = design_->spec().mean_db + design_->spec().sigma_db * v;
  }
  return s;
}

void ShadowingProcess::gains_for_rows(std::uint64_t first_instant,
                                      std::size_t rows,
                                      std::span<double> out) const {
  const std::size_t n = design_->dimension();
  RFADE_EXPECTS(out.size() == rows * n,
                "ShadowingProcess: output must be rows x dimension");
  const std::size_t spacing = design_->spec().spacing;
  const std::uint64_t first_node = first_instant / spacing;
  const std::uint64_t last_node = (first_instant + rows - 1) / spacing + 1;
  const std::size_t count = static_cast<std::size_t>(last_node - first_node) + 1;
  thread_local std::vector<double> nodes;
  if (nodes.size() < count * n) {
    nodes.resize(count * n);
  }
  node_gains(first_node, count, nodes.data());
  const double inv_spacing = 1.0 / static_cast<double>(spacing);
  for (std::size_t t = 0; t < rows; ++t) {
    const std::uint64_t l = first_instant + t;
    const std::size_t node = static_cast<std::size_t>(l / spacing - first_node);
    const double frac =
        static_cast<double>(l % spacing) * inv_spacing;
    const double* a = nodes.data() + node * n;
    const double* b = a + n;
    double* row = out.data() + t * n;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = a[j] + frac * (b[j] - a[j]);
    }
  }
}

}  // namespace rfade::scenario::composite
