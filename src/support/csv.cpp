#include "rfade/support/csv.hpp"

#include <sstream>

#include "rfade/support/error.hpp"

namespace rfade::support {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw Error("CsvWriter: cannot open '" + path + "' for writing");
  }
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::write_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double value : cells) {
    formatted.push_back(format(value));
  }
  write_row(formatted);
}

std::string CsvWriter::format(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

std::string CsvWriter::format(std::complex<double> value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value.real();
  if (value.imag() >= 0) {
    os << '+';
  }
  os << value.imag() << 'i';
  return os.str();
}

}  // namespace rfade::support
