#include "rfade/support/exact_sum.hpp"

#include <cmath>
#include <cstring>

#include "rfade/support/error.hpp"

namespace rfade::support {

ExactSum::ExactSum() noexcept { reset(); }

void ExactSum::reset() noexcept {
  std::memset(limbs_, 0, sizeof(limbs_));
  count_ = 0;
  pending_ = 0;
}

void ExactSum::add(double x) {
  if (!std::isfinite(x)) {
    throw ValueError("ExactSum::add: input must be finite");
  }
  ++count_;
  if (x == 0.0) {
    return;
  }
  if (pending_ >= kNormalizeEvery) {
    normalize();
  }
  ++pending_;

  // x = M * 2^(e-53) with M an exact 53-bit signed integer.
  int e = 0;
  const double m = std::frexp(x, &e);
  const auto significand = static_cast<std::int64_t>(std::ldexp(m, 53));

  const int shift = e - 53 + kPointShift;
  const int idx = shift >> 5;
  const int rem = shift & 31;

  // Deposit |M| << rem as up to three base-2^32 chunks, each < 2^32.
  const bool negative = significand < 0;
  auto magnitude = static_cast<unsigned __int128>(
      negative ? -significand : significand);
  magnitude <<= rem;
  for (int i = idx; magnitude != 0; ++i, magnitude >>= 32) {
    const auto chunk = static_cast<std::int64_t>(
        static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    limbs_[i] += negative ? -chunk : chunk;
  }
}

void ExactSum::normalize() const noexcept {
  // Canonicalize: low limbs in [0, 2^32), sign carried by the top limb.
  // The canonical state is the unique base-2^32 representation of the
  // exact integer total, so it is independent of add/merge order.
  std::int64_t carry = 0;
  for (int i = 0; i < kLimbs - 1; ++i) {
    const std::int64_t v = limbs_[i] + carry;
    carry = v >> 32;  // arithmetic shift: floor division by 2^32
    limbs_[i] = v - (carry << 32);
  }
  limbs_[kLimbs - 1] += carry;
  pending_ = 0;
}

void ExactSum::merge(const ExactSum& other) noexcept {
  normalize();
  other.normalize();
  for (int i = 0; i < kLimbs; ++i) {
    limbs_[i] += other.limbs_[i];
  }
  count_ += other.count_;
  pending_ = 1;  // limbs may sit one carry above canonical form
}

double ExactSum::value() const noexcept {
  normalize();
  // High-to-low read-out of the canonical state: every limb fits a double
  // exactly (< 2^32, except the signed top limb which stays far below
  // 2^53 in practice), so the only rounding is the final fold into the
  // 53-bit result.  Deterministic given the canonical state.
  double acc = 0.0;
  for (int i = kLimbs - 1; i >= 0; --i) {
    if (limbs_[i] != 0) {
      acc += std::ldexp(static_cast<double>(limbs_[i]), 32 * i - kPointShift);
    }
  }
  return acc;
}

}  // namespace rfade::support
