#include "rfade/support/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace rfade::support {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::set_header(const std::vector<std::string>& header) {
  header_ = header;
}

void TablePrinter::add_row(const std::vector<std::string>& row) {
  rows_.push_back(row);
}

std::string TablePrinter::str() const {
  // Column widths: max over header and all rows.
  std::size_t columns = header_.size();
  for (const auto& row : rows_) {
    columns = std::max(columns, row.size());
  }
  std::vector<std::size_t> width(columns, 0);
  auto widen = [&width](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&os, &width, columns](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      os << "  " << cell << std::string(width[i] - cell.size(), ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (const std::size_t w : width) {
      rule += w + 2;
    }
    os << "  " << std::string(rule > 2 ? rule - 2 : 0, '-') << '\n';
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

void TablePrinter::print() const { std::cout << str() << std::flush; }

std::string fixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string scientific(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace rfade::support
