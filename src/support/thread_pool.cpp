#include "rfade/support/thread_pool.hpp"

#include "rfade/telemetry/registry.hpp"

namespace rfade::support {

namespace {
thread_local bool t_on_worker_thread = false;

// Pool instruments: instantaneous queue occupancy plus the total task
// count.  All pools share the instruments (rfade runs one global pool);
// interned on first use, null when telemetry is compiled out.
telemetry::Gauge* queue_depth_gauge() {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::Gauge> gauge =
      telemetry::Registry::global().gauge("rfade_thread_pool_queue_depth");
  return gauge.get();
}

telemetry::Counter* tasks_counter() {
  if constexpr (!telemetry::kCompiledIn) {
    return nullptr;
  }
  static const std::shared_ptr<telemetry::Counter> counter =
      telemetry::Registry::global().counter("rfade_thread_pool_tasks_total");
  return counter.get();
}
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

void ThreadPool::note_enqueued(std::size_t depth) noexcept {
  if (!telemetry::enabled()) {
    return;
  }
  if (telemetry::Gauge* gauge = queue_depth_gauge()) {
    gauge->set(static_cast<double>(depth));
  }
  if (telemetry::Counter* tasks = tasks_counter()) {
    tasks->add();
  }
}

void ThreadPool::note_dequeued(std::size_t depth) noexcept {
  if (!telemetry::enabled()) {
    return;
  }
  if (telemetry::Gauge* gauge = queue_depth_gauge()) {
    gauge->set(static_cast<double>(depth));
  }
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to do
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      note_dequeued(queue_.size());
    }
    task();  // exceptions are captured by the packaged_task
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rfade::support
