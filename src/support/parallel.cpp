#include "rfade/support/parallel.hpp"

#include <algorithm>
#include <future>
#include <vector>

#include "rfade/support/contracts.hpp"
#include "rfade/support/thread_pool.hpp"

namespace rfade::support {

std::size_t chunk_count(std::size_t n, const ChunkingOptions& options) {
  RFADE_EXPECTS(options.chunk_size > 0, "chunk_size must be positive");
  return (n + options.chunk_size - 1) / options.chunk_size;
}

void parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const ChunkingOptions& options) {
  RFADE_EXPECTS(options.chunk_size > 0, "chunk_size must be positive");
  if (n == 0) {
    return;
  }
  const std::size_t chunks = chunk_count(n, options);
  // Degrade gracefully to in-place serial execution when dispatching to the
  // pool cannot help or would deadlock: explicit request, a single chunk, a
  // degenerate pool (hardware_concurrency() == 0 leaves one worker —
  // dispatching there only adds queueing latency), or a caller that is
  // itself a pool task (submitting and blocking from a worker exhausts the
  // pool).  The chunk decomposition — and therefore every chunk-keyed RNG
  // stream — is identical either way.
  if (options.serial || chunks == 1 || ThreadPool::global().size() <= 1 ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * options.chunk_size;
      const std::size_t end = std::min(n, begin + options.chunk_size);
      body(begin, end, c);
    }
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * options.chunk_size;
    const std::size_t end = std::min(n, begin + options.chunk_size);
    pending.push_back(ThreadPool::global().submit(
        [&body, begin, end, c] { body(begin, end, c); }));
  }
  // Wait for everything, then surface the first failure (if any).  Waiting
  // first guarantees no task still references caller-owned state when the
  // exception propagates.
  for (auto& f : pending) {
    f.wait();
  }
  for (auto& f : pending) {
    f.get();
  }
}

}  // namespace rfade::support
