#include "rfade/support/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "rfade/support/error.hpp"

namespace rfade::support {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw Error("ArgParser: unexpected positional argument '" + token + "'");
    }
    token.erase(0, 2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[i + 1];
      ++i;
    } else {
      values_[token] = "";  // bare boolean flag
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) {
      throw std::invalid_argument(it->second);
    }
    return value;
  } catch (const std::exception&) {
    throw ValueError("ArgParser: option --" + name + " expects a number, got '" +
                     it->second + "'");
  }
}

std::size_t ArgParser::get_size(const std::string& name,
                                std::size_t fallback) const {
  const double value = get_double(name, static_cast<double>(fallback));
  if (value < 0 || value != static_cast<double>(static_cast<std::size_t>(value))) {
    throw ValueError("ArgParser: option --" + name +
                     " expects a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace rfade::support
