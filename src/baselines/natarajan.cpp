#include "rfade/baselines/natarajan.hpp"

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/cholesky.hpp"
#include "rfade/numeric/matrix_ops.hpp"

namespace rfade::baselines {

NatarajanGenerator::NatarajanGenerator(const numeric::CMatrix& k)
    : dim_(k.rows()) {
  core::validate_covariance_matrix(k);
  // Eq. (8) of [5]: covariances forced real.
  achieved_ = numeric::to_complex(numeric::real_part(k));
  coloring_ = numeric::cholesky(achieved_);  // throws on non-PD Re(K)
}

numeric::CVector NatarajanGenerator::sample(random::Rng& rng) const {
  numeric::CVector z(dim_, numeric::cdouble{});
  for (std::size_t j = 0; j < dim_; ++j) {
    const numeric::cdouble w = rng.complex_gaussian(1.0);
    for (std::size_t i = j; i < dim_; ++i) {
      z[i] += coloring_(i, j) * w;
    }
  }
  return z;
}

}  // namespace rfade::baselines
