#include "rfade/baselines/sorooshyari_daut.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/cholesky.hpp"
#include "rfade/support/error.hpp"

namespace rfade::baselines {

namespace {

void require_equal_powers(const numeric::CMatrix& k) {
  const double power = k(0, 0).real();
  for (std::size_t j = 1; j < k.rows(); ++j) {
    if (std::abs(k(j, j).real() - power) > 1e-9 * power) {
      throw ValueError(
          "SorooshyariDaut: method supports equal powers only");
    }
  }
}

numeric::CMatrix epsilon_forced_cholesky(const numeric::CMatrix& k,
                                         double epsilon,
                                         numeric::CMatrix* forced_out,
                                         double* distance_out) {
  core::PsdOptions psd;
  psd.policy = core::PsdPolicy::EpsilonReplace;
  psd.epsilon = epsilon;
  const core::PsdResult forced = core::force_positive_semidefinite(k, psd);
  if (forced_out != nullptr) {
    *forced_out = forced.matrix;
  }
  if (distance_out != nullptr) {
    *distance_out = forced.frobenius_distance;
  }
  // All eigenvalues are >= epsilon, so Cholesky is performable; residual
  // round-off failures (the MATLAB issue reported in the paper) surface as
  // NotPositiveDefiniteError.
  return numeric::cholesky(forced.matrix);
}

}  // namespace

SorooshyariDautGenerator::SorooshyariDautGenerator(const numeric::CMatrix& k,
                                                   double epsilon)
    : dim_(k.rows()) {
  core::validate_covariance_matrix(k);
  require_equal_powers(k);
  coloring_ = epsilon_forced_cholesky(k, epsilon, &forced_, &forcing_distance_);
}

numeric::CVector SorooshyariDautGenerator::sample(random::Rng& rng) const {
  numeric::CVector z(dim_, numeric::cdouble{});
  for (std::size_t j = 0; j < dim_; ++j) {
    const numeric::cdouble w = rng.complex_gaussian(1.0);
    for (std::size_t i = j; i < dim_; ++i) {
      z[i] += coloring_(i, j) * w;
    }
  }
  return z;
}

SorooshyariDautRealTime::SorooshyariDautRealTime(const numeric::CMatrix& k,
                                                 std::size_t m, double fm,
                                                 double input_variance_per_dim,
                                                 double epsilon)
    : dim_(k.rows()),
      branch_(m, fm, input_variance_per_dim),
      assumed_variance_(2.0 * input_variance_per_dim) {
  core::validate_covariance_matrix(k);
  require_equal_powers(k);
  coloring_ = epsilon_forced_cholesky(k, epsilon, nullptr, nullptr);
}

numeric::CMatrix SorooshyariDautRealTime::generate_block(
    random::Rng& rng) const {
  const std::size_t m = branch_.block_size();
  numeric::CMatrix branch_outputs(dim_, m);
  for (std::size_t j = 0; j < dim_; ++j) {
    const numeric::CVector u = branch_.generate_block(rng);
    for (std::size_t l = 0; l < m; ++l) {
      branch_outputs(j, l) = u[l];
    }
  }
  // Step 6 of [6]: the branch outputs are fed in as if their variance were
  // still the input variance — no Eq. (19) correction.
  const double inv_sigma = 1.0 / std::sqrt(assumed_variance_);
  numeric::CMatrix block(m, dim_, numeric::cdouble{});
  for (std::size_t l = 0; l < m; ++l) {
    for (std::size_t j = 0; j < dim_; ++j) {
      const numeric::cdouble w = branch_outputs(j, l) * inv_sigma;
      for (std::size_t i = 0; i < dim_; ++i) {
        block(l, i) += coloring_(i, j) * w;
      }
    }
  }
  return block;
}

}  // namespace rfade::baselines
