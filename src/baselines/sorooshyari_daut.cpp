#include "rfade/baselines/sorooshyari_daut.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/support/error.hpp"

namespace rfade::baselines {

namespace {

void require_equal_powers(const numeric::CMatrix& k) {
  const double power = k(0, 0).real();
  for (std::size_t j = 1; j < k.rows(); ++j) {
    if (std::abs(k(j, j).real() - power) > 1e-9 * power) {
      throw ValueError(
          "SorooshyariDaut: method supports equal powers only");
    }
  }
}

/// The [6] build phase as a plan: epsilon-force the eigenvalues (so
/// Cholesky stays performable), then Cholesky-color the forced matrix.
/// Expressed on the shared plan layer — only the forcing policy differs
/// from the paper's clip-to-zero + eigen-coloring plan.
core::SamplePipeline make_pipeline(const numeric::CMatrix& k, double epsilon,
                                   double* distance_out) {
  core::validate_covariance_matrix(k);
  require_equal_powers(k);
  core::PsdOptions psd;
  psd.policy = core::PsdPolicy::EpsilonReplace;
  psd.epsilon = epsilon;
  const core::PsdResult forced = core::force_positive_semidefinite(k, psd);
  if (distance_out != nullptr) {
    *distance_out = forced.frobenius_distance;
  }
  // All eigenvalues are >= epsilon, so Cholesky is performable; residual
  // round-off failures (the MATLAB issue reported in the paper) surface as
  // NotPositiveDefiniteError.
  core::ColoringOptions coloring;
  coloring.method = core::ColoringMethod::Cholesky;
  return core::SamplePipeline(
      core::ColoringPlan::create(forced.matrix, coloring));
}

}  // namespace

SorooshyariDautGenerator::SorooshyariDautGenerator(const numeric::CMatrix& k,
                                                   double epsilon)
    : dim_(k.rows()),
      pipeline_(make_pipeline(k, epsilon, &forcing_distance_)) {}

numeric::CVector SorooshyariDautGenerator::sample(random::Rng& rng) const {
  return pipeline_.sample(rng);
}

SorooshyariDautRealTime::SorooshyariDautRealTime(const numeric::CMatrix& k,
                                                 std::size_t m, double fm,
                                                 double input_variance_per_dim,
                                                 double epsilon)
    : dim_(k.rows()),
      pipeline_(make_pipeline(k, epsilon, nullptr)),
      branch_(m, fm, input_variance_per_dim),
      assumed_variance_(2.0 * input_variance_per_dim) {}

numeric::CMatrix SorooshyariDautRealTime::generate_block(
    random::Rng& rng) const {
  const std::size_t m = branch_.block_size();
  // Branch outputs u_j[0..M-1]; W row l is (u_1[l] ... u_N[l]).  Step 6 of
  // [6]: the branch outputs are fed in as if their variance were still the
  // input variance — no Eq. (19) correction — with the normalisation
  // folded into the transpose pass.
  const double inv_sigma = 1.0 / std::sqrt(assumed_variance_);
  numeric::CMatrix w(m, dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    const numeric::CVector u = branch_.generate_block(rng);
    for (std::size_t l = 0; l < m; ++l) {
      w(l, j) = u[l] * inv_sigma;
    }
  }
  return pipeline_.color_block(w, 1.0);
}

}  // namespace rfade::baselines
