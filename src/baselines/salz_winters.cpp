#include "rfade/baselines/salz_winters.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/error.hpp"

namespace rfade::baselines {

numeric::RMatrix composite_real_covariance(const numeric::CMatrix& k) {
  const std::size_t n = k.rows();
  numeric::RMatrix c(2 * n, 2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double a = 0.5 * k(i, j).real();   // E[x_i x_j] = E[y_i y_j]
      const double b = -0.5 * k(i, j).imag();  // E[x_i y_j]
      c(i, j) = a;
      c(n + i, n + j) = a;
      c(i, n + j) = b;
      c(n + j, i) = b;
    }
  }
  return c;
}

SalzWintersGenerator::SalzWintersGenerator(const numeric::CMatrix& k)
    : dim_(k.rows()) {
  core::validate_covariance_matrix(k);
  const double power = k(0, 0).real();
  for (std::size_t j = 1; j < dim_; ++j) {
    if (std::abs(k(j, j).real() - power) > 1e-9 * power) {
      throw ValueError(
          "SalzWintersGenerator: method supports equal powers only");
    }
  }

  composite_ = composite_real_covariance(k);

  // Eigen-decompose the real symmetric composite matrix (as a complex
  // Hermitian matrix with zero imaginary part).
  const numeric::HermitianEigen eig =
      numeric::eigen_hermitian(numeric::to_complex(composite_));
  const std::size_t two_n = 2 * dim_;
  double max_abs = 0.0;
  for (const double lambda : eig.values) {
    max_abs = std::max(max_abs, std::abs(lambda));
  }
  if (!eig.values.empty() && eig.values.front() < -1e-10 * std::max(max_abs, 1.0)) {
    // D^{1/2} would be complex and the resulting covariance wrong — the
    // failure mode the paper attributes to this method.
    throw NotPositiveDefiniteError(
        "SalzWintersGenerator: composite covariance is not positive "
        "semi-definite (smallest eigenvalue " +
        std::to_string(eig.values.front()) + ")");
  }

  coloring_ = numeric::RMatrix(two_n, two_n, 0.0);
  for (std::size_t col = 0; col < two_n; ++col) {
    const double root = std::sqrt(std::max(eig.values[col], 0.0));
    for (std::size_t row = 0; row < two_n; ++row) {
      coloring_(row, col) = eig.vectors(row, col).real() * root;
    }
  }
}

numeric::CVector SalzWintersGenerator::sample(random::Rng& rng) const {
  const std::size_t two_n = 2 * dim_;
  numeric::RVector a(two_n);
  for (double& value : a) {
    value = rng.gaussian();
  }
  const numeric::RVector c = numeric::multiply(coloring_, a);
  numeric::CVector z(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    z[j] = numeric::cdouble(c[j], c[dim_ + j]);
  }
  return z;
}

}  // namespace rfade::baselines
