#include "rfade/baselines/beaulieu_merani.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/numeric/cholesky.hpp"
#include "rfade/support/error.hpp"

namespace rfade::baselines {

BeaulieuMeraniGenerator::BeaulieuMeraniGenerator(const numeric::CMatrix& k)
    : dim_(k.rows()) {
  core::validate_covariance_matrix(k);
  const double power = k(0, 0).real();
  for (std::size_t j = 1; j < dim_; ++j) {
    if (std::abs(k(j, j).real() - power) > 1e-9 * power) {
      throw ValueError(
          "BeaulieuMeraniGenerator: method supports equal powers only");
    }
  }
  coloring_ = numeric::cholesky(k);  // throws on non-PD K
}

numeric::CVector BeaulieuMeraniGenerator::sample(random::Rng& rng) const {
  numeric::CVector z(dim_, numeric::cdouble{});
  for (std::size_t j = 0; j < dim_; ++j) {
    const numeric::cdouble w = rng.complex_gaussian(1.0);
    for (std::size_t i = j; i < dim_; ++i) {  // L is lower triangular
      z[i] += coloring_(i, j) * w;
    }
  }
  return z;
}

}  // namespace rfade::baselines
