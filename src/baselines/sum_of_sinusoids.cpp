#include "rfade/baselines/sum_of_sinusoids.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::baselines {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

SumOfSinusoidsGenerator::SumOfSinusoidsGenerator(std::size_t num_paths,
                                                 double fm)
    : num_paths_(num_paths), fm_(fm) {
  RFADE_EXPECTS(num_paths >= 1, "SumOfSinusoids: need at least one path");
  RFADE_EXPECTS(fm > 0.0 && fm <= 0.5,
                "SumOfSinusoids: fm must lie in (0, 0.5]");
}

numeric::CVector SumOfSinusoidsGenerator::generate_block(
    std::size_t length, random::Rng& rng) const {
  RFADE_EXPECTS(length > 0, "SumOfSinusoids: length must be positive");
  // Random arrival angles and phases for this realisation.
  numeric::RVector doppler(num_paths_);
  numeric::RVector phase(num_paths_);
  for (std::size_t n = 0; n < num_paths_; ++n) {
    doppler[n] = kTwoPi * fm_ * std::cos(kTwoPi * rng.uniform01());
    phase[n] = kTwoPi * rng.uniform01();
  }
  const double amplitude = std::sqrt(2.0 / static_cast<double>(num_paths_));
  numeric::CVector block(length);
  for (std::size_t l = 0; l < length; ++l) {
    numeric::cdouble acc{};
    for (std::size_t n = 0; n < num_paths_; ++n) {
      const double theta = doppler[n] * static_cast<double>(l) + phase[n];
      acc += numeric::cdouble(std::cos(theta), std::sin(theta));
    }
    block[l] = amplitude * acc;
  }
  return block;
}

}  // namespace rfade::baselines
