#include "rfade/baselines/ertel_reed.hpp"

#include <cmath>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/support/error.hpp"

namespace rfade::baselines {

ErtelReedGenerator::ErtelReedGenerator(double power, std::complex<double> rho)
    : power_(power), rho_(rho) {
  if (!(power > 0.0)) {
    throw ValueError("ErtelReedGenerator: power must be positive");
  }
  const double mag = std::abs(rho);
  if (mag > 1.0 + 1e-12) {
    throw ValueError("ErtelReedGenerator: |rho| must be <= 1");
  }
  orthogonal_gain_ = std::sqrt(std::max(0.0, 1.0 - mag * mag));
}

namespace {

std::complex<double> rho_from_matrix(const numeric::CMatrix& k) {
  core::validate_covariance_matrix(k);
  if (k.rows() != 2) {
    throw ValueError("ErtelReedGenerator: method is defined for N = 2 only");
  }
  const double p0 = k(0, 0).real();
  const double p1 = k(1, 1).real();
  if (std::abs(p0 - p1) > 1e-9 * p0) {
    throw ValueError("ErtelReedGenerator: method requires equal powers");
  }
  return k(0, 1) / p0;
}

}  // namespace

ErtelReedGenerator::ErtelReedGenerator(const numeric::CMatrix& k)
    : ErtelReedGenerator(k(0, 0).real(), rho_from_matrix(k)) {}

numeric::CVector ErtelReedGenerator::sample(random::Rng& rng) const {
  const double sigma = std::sqrt(power_);
  const numeric::cdouble w1 = rng.complex_gaussian(1.0);
  const numeric::cdouble w2 = rng.complex_gaussian(1.0);
  numeric::CVector z(2);
  z[0] = sigma * w1;
  // E[z_1 conj(z_2)] = sigma^2 rho requires the conj(rho) weight on w1.
  z[1] = sigma * (std::conj(rho_) * w1 + orthogonal_gain_ * w2);
  return z;
}

}  // namespace rfade::baselines
