#include "rfade/fft/fft.hpp"

#include <cmath>

#include "rfade/support/contracts.hpp"

namespace rfade::fft {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

/// Bit-reversal permutation for a power-of-two length.
void bit_reverse(CVector& data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i < j) {
      std::swap(data[i], data[j]);
    }
    std::size_t mask = n >> 1;
    while (j & mask) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
}

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Bluestein's chirp-z FFT for arbitrary length.
CVector bluestein(const CVector& data, Direction direction) {
  const std::size_t n = data.size();
  const double sign = direction == Direction::Forward ? -1.0 : 1.0;

  // Chirp w[j] = exp(sign * i * pi * j^2 / n); j^2 is reduced mod 2n to
  // keep the phase argument small and accurate.
  CVector chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    const unsigned long long j2 =
        (static_cast<unsigned long long>(j) * j) % (2ull * n);
    const double phase = sign * kPi * static_cast<double>(j2) / static_cast<double>(n);
    chirp[j] = std::polar(1.0, phase);
  }

  const std::size_t m = next_pow2(2 * n - 1);
  CVector a(m, cdouble{});
  CVector b(m, cdouble{});
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = data[j] * chirp[j];
    const cdouble inv = std::conj(chirp[j]);
    b[j] = inv;
    if (j != 0) {
      b[m - j] = inv;  // symmetric tail for the circular convolution
    }
  }

  fft_pow2_inplace(a, Direction::Forward);
  fft_pow2_inplace(b, Direction::Forward);
  for (std::size_t j = 0; j < m; ++j) {
    a[j] *= b[j];
  }
  fft_pow2_inplace(a, Direction::Inverse);

  CVector result(n);
  const double scale = 1.0 / static_cast<double>(m);  // undo unnormalised IFFT
  for (std::size_t j = 0; j < n; ++j) {
    result[j] = a[j] * scale * chirp[j];
  }
  return result;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_pow2_inplace(CVector& data, Direction direction) {
  const std::size_t n = data.size();
  RFADE_EXPECTS(is_power_of_two(n), "fft_pow2_inplace: size must be 2^k");
  if (n == 1) {
    return;
  }
  bit_reverse(data);
  const double sign = direction == Direction::Forward ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * kPi / static_cast<double>(len);
    const cdouble w_len = std::polar(1.0, angle);
    for (std::size_t start = 0; start < n; start += len) {
      cdouble w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        // Periodically resynchronise the twiddle to bound error growth.
        if ((k & 63u) == 0u && k != 0u) {
          w = std::polar(1.0, angle * static_cast<double>(k));
        }
        const cdouble even = data[start + k];
        const cdouble odd = data[start + k + len / 2] * w;
        data[start + k] = even + odd;
        data[start + k + len / 2] = even - odd;
        w *= w_len;
      }
    }
  }
}

CVector transform(const CVector& data, Direction direction) {
  if (data.empty()) {
    return {};
  }
  if (is_power_of_two(data.size())) {
    CVector copy = data;
    fft_pow2_inplace(copy, direction);
    return copy;
  }
  return bluestein(data, direction);
}

CVector dft(const CVector& data) { return transform(data, Direction::Forward); }

CVector idft(const CVector& data) {
  CVector result = transform(data, Direction::Inverse);
  const double scale = result.empty() ? 1.0 : 1.0 / static_cast<double>(result.size());
  for (cdouble& value : result) {
    value *= scale;
  }
  return result;
}

// --- Pow2Plan ----------------------------------------------------------------

namespace {

/// The per-stage twiddle value sequence of fft_pow2_inplace, verbatim:
/// incremental w *= w_len with a std::polar resynchronisation every 64
/// steps — precomputing *these* values (not directly-evaluated polars)
/// is what keeps the planned transform bit-identical to the ad-hoc one.
void fill_stage_twiddles(std::size_t len, double sign, cdouble* out) {
  const double angle = sign * 2.0 * kPi / static_cast<double>(len);
  const cdouble w_len = std::polar(1.0, angle);
  cdouble w(1.0, 0.0);
  for (std::size_t k = 0; k < len / 2; ++k) {
    if ((k & 63u) == 0u && k != 0u) {
      w = std::polar(1.0, angle * static_cast<double>(k));
    }
    out[k] = w;
    w *= w_len;
  }
}

}  // namespace

Pow2Plan::Pow2Plan(std::size_t n) : n_(n) {
  RFADE_EXPECTS(is_power_of_two(n), "Pow2Plan: size must be 2^k");
  RFADE_EXPECTS(n <= (std::size_t{1} << 32), "Pow2Plan: size exceeds 2^32");
  // Bit-reversal permutation as an explicit swap list (i < j only).
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i < j) {
      swaps_.push_back(static_cast<std::uint32_t>(i));
      swaps_.push_back(static_cast<std::uint32_t>(j));
    }
    std::size_t mask = n >> 1;
    while (j & mask) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
  if (n > 1) {
    forward_twiddles_.resize(n - 1);
    inverse_twiddles_.resize(n - 1);
    std::size_t offset = 0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      fill_stage_twiddles(len, -1.0, forward_twiddles_.data() + offset);
      fill_stage_twiddles(len, 1.0, inverse_twiddles_.data() + offset);
      offset += len / 2;
    }
  }
}

void Pow2Plan::transform(CVector& data, Direction direction) const {
  RFADE_EXPECTS(data.size() == n_, "Pow2Plan: data size mismatch");
  if (n_ == 1) {
    return;
  }
  for (std::size_t s = 0; s + 1 < swaps_.size(); s += 2) {
    std::swap(data[swaps_[s]], data[swaps_[s + 1]]);
  }
  const std::vector<cdouble>& twiddles =
      direction == Direction::Forward ? forward_twiddles_ : inverse_twiddles_;
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const cdouble* w = twiddles.data() + offset;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble even = data[start + k];
        const cdouble odd = data[start + k + len / 2] * w[k];
        data[start + k] = even + odd;
        data[start + k + len / 2] = even - odd;
      }
    }
    offset += len / 2;
  }
}

CVector Pow2Plan::dft(const CVector& data) const {
  CVector copy = data;
  transform(copy, Direction::Forward);
  return copy;
}

CVector Pow2Plan::idft(const CVector& data) const {
  CVector copy = data;
  transform(copy, Direction::Inverse);
  const double scale = 1.0 / static_cast<double>(n_);
  for (cdouble& value : copy) {
    value *= scale;
  }
  return copy;
}

CVector naive_dft(const CVector& data, Direction direction) {
  const std::size_t n = data.size();
  const double sign = direction == Direction::Forward ? -1.0 : 1.0;
  CVector result(n, cdouble{});
  for (std::size_t k = 0; k < n; ++k) {
    cdouble acc{};
    for (std::size_t l = 0; l < n; ++l) {
      const double phase = sign * 2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(l) / static_cast<double>(n);
      acc += data[l] * std::polar(1.0, phase);
    }
    result[k] = acc;
  }
  return result;
}

}  // namespace rfade::fft
