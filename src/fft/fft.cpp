#include "rfade/fft/fft.hpp"

#include <algorithm>
#include <cmath>

#include "rfade/support/contracts.hpp"
#include "rfade/support/simd.hpp"

// NOTE: this translation unit is compiled with -ffp-contract=off (see
// CMakeLists.txt).  The batched planar kernels below promise bit-identical
// results per lane against the std::complex scalar paths, and the avx512f
// clone tier would otherwise be free to contract mul+add into 512-bit FMAs
// and break that promise.

namespace rfade::fft {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

/// Bit-reversal permutation for a power-of-two length.
void bit_reverse(CVector& data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i < j) {
      std::swap(data[i], data[j]);
    }
    std::size_t mask = n >> 1;
    while (j & mask) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
}

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Bluestein's chirp-z FFT for arbitrary length.
CVector bluestein(const CVector& data, Direction direction) {
  const std::size_t n = data.size();
  const double sign = direction == Direction::Forward ? -1.0 : 1.0;

  // Chirp w[j] = exp(sign * i * pi * j^2 / n); j^2 is reduced mod 2n to
  // keep the phase argument small and accurate.
  CVector chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    const unsigned long long j2 =
        (static_cast<unsigned long long>(j) * j) % (2ull * n);
    const double phase = sign * kPi * static_cast<double>(j2) / static_cast<double>(n);
    chirp[j] = std::polar(1.0, phase);
  }

  const std::size_t m = next_pow2(2 * n - 1);
  CVector a(m, cdouble{});
  CVector b(m, cdouble{});
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = data[j] * chirp[j];
    const cdouble inv = std::conj(chirp[j]);
    b[j] = inv;
    if (j != 0) {
      b[m - j] = inv;  // symmetric tail for the circular convolution
    }
  }

  fft_pow2_inplace(a, Direction::Forward);
  fft_pow2_inplace(b, Direction::Forward);
  for (std::size_t j = 0; j < m; ++j) {
    a[j] *= b[j];
  }
  fft_pow2_inplace(a, Direction::Inverse);

  CVector result(n);
  const double scale = 1.0 / static_cast<double>(m);  // undo unnormalised IFFT
  for (std::size_t j = 0; j < n; ++j) {
    result[j] = a[j] * scale * chirp[j];
  }
  return result;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_pow2_inplace(CVector& data, Direction direction) {
  const std::size_t n = data.size();
  RFADE_EXPECTS(is_power_of_two(n), "fft_pow2_inplace: size must be 2^k");
  if (n == 1) {
    return;
  }
  bit_reverse(data);
  const double sign = direction == Direction::Forward ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * kPi / static_cast<double>(len);
    const cdouble w_len = std::polar(1.0, angle);
    for (std::size_t start = 0; start < n; start += len) {
      cdouble w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        // Periodically resynchronise the twiddle to bound error growth.
        if ((k & 63u) == 0u && k != 0u) {
          w = std::polar(1.0, angle * static_cast<double>(k));
        }
        const cdouble even = data[start + k];
        const cdouble odd = data[start + k + len / 2] * w;
        data[start + k] = even + odd;
        data[start + k + len / 2] = even - odd;
        w *= w_len;
      }
    }
  }
}

CVector transform(const CVector& data, Direction direction) {
  if (data.empty()) {
    return {};
  }
  if (is_power_of_two(data.size())) {
    CVector copy = data;
    fft_pow2_inplace(copy, direction);
    return copy;
  }
  return bluestein(data, direction);
}

CVector dft(const CVector& data) { return transform(data, Direction::Forward); }

CVector idft(const CVector& data) {
  CVector result = transform(data, Direction::Inverse);
  const double scale = result.empty() ? 1.0 : 1.0 / static_cast<double>(result.size());
  for (cdouble& value : result) {
    value *= scale;
  }
  return result;
}

// --- Batched planar kernels --------------------------------------------------

namespace {

/// All butterfly stages of \p batch lockstep transforms on planar data
/// (lane b of point p at [p * batch + b]).  The per-lane arithmetic is
/// written to mirror the std::complex operations of Pow2Plan::transform
/// exactly — odd = x * w as (xr*wr - xi*wi, xr*wi + xi*wr), then sum and
/// difference — so each lane's value sequence is bit-identical to the
/// scalar path.  The inner lane loops run over contiguous memory, which
/// is what the clone tier vectorises (zmm on avx512f).
RFADE_TARGET_CLONES_WIDE
void batched_butterfly_stages(double* __restrict re, double* __restrict im,
                              std::size_t n, std::size_t batch,
                              const cdouble* twiddles) {
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const cdouble* w = twiddles + offset;
    const std::size_t half = len / 2;
    for (std::size_t start = 0; start < n; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = w[k].real();
        const double wi = w[k].imag();
        double* __restrict er = re + (start + k) * batch;
        double* __restrict ei = im + (start + k) * batch;
        double* __restrict xr = re + (start + k + half) * batch;
        double* __restrict xi = im + (start + k + half) * batch;
        for (std::size_t b = 0; b < batch; ++b) {
          const double odd_r = xr[b] * wr - xi[b] * wi;
          const double odd_i = xr[b] * wi + xi[b] * wr;
          const double even_r = er[b];
          const double even_i = ei[b];
          er[b] = even_r + odd_r;
          ei[b] = even_i + odd_i;
          xr[b] = even_r - odd_r;
          xi[b] = even_i - odd_i;
        }
      }
    }
    offset += half;
  }
}

/// Pointwise planar multiply by a shared spectrum, mirroring the operand
/// order of std::complex operator*= (work[k] *= h[k]) per lane.
RFADE_TARGET_CLONES_WIDE
void batched_pointwise_kernel(double* __restrict re, double* __restrict im,
                              std::size_t n, std::size_t batch,
                              const cdouble* h) {
  for (std::size_t k = 0; k < n; ++k) {
    const double hr = h[k].real();
    const double hi = h[k].imag();
    double* __restrict r = re + k * batch;
    double* __restrict i = im + k * batch;
    for (std::size_t b = 0; b < batch; ++b) {
      const double xr = r[b];
      const double xi = i[b];
      r[b] = xr * hr - xi * hi;
      i[b] = xr * hi + xi * hr;
    }
  }
}

/// Float clones of the batched kernels (plain functions: target_clones
/// cannot attach to templates).  Identical per-lane operation order at
/// twice the lanes per vector; contraction stays off in this TU, so every
/// clone reproduces the scalar float bit pattern.
RFADE_TARGET_CLONES_WIDE
void batched_butterfly_stages_f32(float* __restrict re, float* __restrict im,
                                  std::size_t n, std::size_t batch,
                                  const cfloat* twiddles) {
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const cfloat* w = twiddles + offset;
    const std::size_t half = len / 2;
    for (std::size_t start = 0; start < n; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const float wr = w[k].real();
        const float wi = w[k].imag();
        float* __restrict er = re + (start + k) * batch;
        float* __restrict ei = im + (start + k) * batch;
        float* __restrict xr = re + (start + k + half) * batch;
        float* __restrict xi = im + (start + k + half) * batch;
        for (std::size_t b = 0; b < batch; ++b) {
          const float odd_r = xr[b] * wr - xi[b] * wi;
          const float odd_i = xr[b] * wi + xi[b] * wr;
          const float even_r = er[b];
          const float even_i = ei[b];
          er[b] = even_r + odd_r;
          ei[b] = even_i + odd_i;
          xr[b] = even_r - odd_r;
          xi[b] = even_i - odd_i;
        }
      }
    }
    offset += half;
  }
}

RFADE_TARGET_CLONES_WIDE
void batched_pointwise_kernel_f32(float* __restrict re, float* __restrict im,
                                  std::size_t n, std::size_t batch,
                                  const cfloat* h) {
  for (std::size_t k = 0; k < n; ++k) {
    const float hr = h[k].real();
    const float hi = h[k].imag();
    float* __restrict r = re + k * batch;
    float* __restrict i = im + k * batch;
    for (std::size_t b = 0; b < batch; ++b) {
      const float xr = r[b];
      const float xi = i[b];
      r[b] = xr * hr - xi * hi;
      i[b] = xr * hi + xi * hr;
    }
  }
}

}  // namespace

void multiply_batched_pointwise(double* re, double* im, std::size_t n,
                                std::size_t batch, const cdouble* h) {
  if (n == 0 || batch == 0) {
    return;
  }
  batched_pointwise_kernel(re, im, n, batch, h);
}

void multiply_batched_pointwise(float* re, float* im, std::size_t n,
                                std::size_t batch, const cfloat* h) {
  if (n == 0 || batch == 0) {
    return;
  }
  batched_pointwise_kernel_f32(re, im, n, batch, h);
}

// --- Pow2Plan ----------------------------------------------------------------

namespace {

/// The per-stage twiddle value sequence of fft_pow2_inplace, verbatim:
/// incremental w *= w_len with a std::polar resynchronisation every 64
/// steps — precomputing *these* values (not directly-evaluated polars)
/// is what keeps the planned transform bit-identical to the ad-hoc one.
void fill_stage_twiddles(std::size_t len, double sign, cdouble* out) {
  const double angle = sign * 2.0 * kPi / static_cast<double>(len);
  const cdouble w_len = std::polar(1.0, angle);
  cdouble w(1.0, 0.0);
  for (std::size_t k = 0; k < len / 2; ++k) {
    if ((k & 63u) == 0u && k != 0u) {
      w = std::polar(1.0, angle * static_cast<double>(k));
    }
    out[k] = w;
    w *= w_len;
  }
}

}  // namespace

Pow2Plan::Pow2Plan(std::size_t n) : n_(n) {
  RFADE_EXPECTS(is_power_of_two(n), "Pow2Plan: size must be 2^k");
  RFADE_EXPECTS(n <= (std::size_t{1} << 32), "Pow2Plan: size exceeds 2^32");
  // Bit-reversal permutation as an explicit swap list (i < j only).
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i < j) {
      swaps_.push_back(static_cast<std::uint32_t>(i));
      swaps_.push_back(static_cast<std::uint32_t>(j));
    }
    std::size_t mask = n >> 1;
    while (j & mask) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
  if (n > 1) {
    forward_twiddles_.resize(n - 1);
    inverse_twiddles_.resize(n - 1);
    std::size_t offset = 0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      fill_stage_twiddles(len, -1.0, forward_twiddles_.data() + offset);
      fill_stage_twiddles(len, 1.0, inverse_twiddles_.data() + offset);
      offset += len / 2;
    }
  }
}

void Pow2Plan::transform(CVector& data, Direction direction) const {
  RFADE_EXPECTS(data.size() == n_, "Pow2Plan: data size mismatch");
  if (n_ == 1) {
    return;
  }
  for (std::size_t s = 0; s + 1 < swaps_.size(); s += 2) {
    std::swap(data[swaps_[s]], data[swaps_[s + 1]]);
  }
  const std::vector<cdouble>& twiddles =
      direction == Direction::Forward ? forward_twiddles_ : inverse_twiddles_;
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const cdouble* w = twiddles.data() + offset;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble even = data[start + k];
        const cdouble odd = data[start + k + len / 2] * w[k];
        data[start + k] = even + odd;
        data[start + k + len / 2] = even - odd;
      }
    }
    offset += len / 2;
  }
}

CVector Pow2Plan::dft(const CVector& data) const {
  CVector copy = data;
  transform(copy, Direction::Forward);
  return copy;
}

CVector Pow2Plan::idft(const CVector& data) const {
  CVector copy = data;
  transform(copy, Direction::Inverse);
  const double scale = 1.0 / static_cast<double>(n_);
  for (cdouble& value : copy) {
    value *= scale;
  }
  return copy;
}

void Pow2Plan::transform_batched(double* re, double* im, std::size_t batch,
                                 Direction direction) const {
  RFADE_EXPECTS(re != nullptr && im != nullptr,
                "Pow2Plan::transform_batched: null data");
  if (n_ == 1 || batch == 0) {
    return;
  }
  // Bit-reversal permutation: each swap exchanges one planar row (batch
  // contiguous lanes) — pure data movement, no rounding involved.
  for (std::size_t s = 0; s + 1 < swaps_.size(); s += 2) {
    const std::size_t i = std::size_t{swaps_[s]} * batch;
    const std::size_t j = std::size_t{swaps_[s + 1]} * batch;
    std::swap_ranges(re + i, re + i + batch, re + j);
    std::swap_ranges(im + i, im + i + batch, im + j);
  }
  const std::vector<cdouble>& twiddles =
      direction == Direction::Forward ? forward_twiddles_ : inverse_twiddles_;
  batched_butterfly_stages(re, im, n_, batch, twiddles.data());
}

void Pow2Plan::transform_real_pair(const RVector& x, const RVector& y,
                                   CVector& fx, CVector& fy) const {
  RFADE_EXPECTS(x.size() == n_ && y.size() == n_,
                "Pow2Plan::transform_real_pair: input size mismatch");
  CVector z(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    z[j] = cdouble(x[j], y[j]);
  }
  transform(z, Direction::Forward);
  fx.resize(n_);
  fy.resize(n_);
  // X[k] = (Z[k] + conj(Z[N-k]))/2, Y[k] = -i (Z[k] - conj(Z[N-k]))/2:
  // the even/odd (conjugate-symmetric / conjugate-antisymmetric) parts of
  // Z carry the two real sequences' spectra.
  for (std::size_t k = 0; k < n_; ++k) {
    const cdouble zk = z[k];
    const cdouble zr = std::conj(z[(n_ - k) % n_]);
    fx[k] = (zk + zr) * 0.5;
    fy[k] = (zk - zr) * cdouble(0.0, -0.5);
  }
}

CVector Pow2Plan::transform_real(const RVector& x) const {
  RFADE_EXPECTS(x.size() == 2 * n_,
                "Pow2Plan::transform_real: input must have 2 * size() samples");
  // Split identity: pack even/odd samples into one complex sequence, take
  // the N-point transform, and recombine with half-resolution twiddles.
  CVector z(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    z[j] = cdouble(x[2 * j], x[2 * j + 1]);
  }
  transform(z, Direction::Forward);
  CVector spectrum(2 * n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const cdouble zk = z[k];
    const cdouble zr = std::conj(z[(n_ - k) % n_]);
    const cdouble even = (zk + zr) * 0.5;
    const cdouble odd = (zk - zr) * cdouble(0.0, -0.5);
    const cdouble w =
        std::polar(1.0, -kPi * static_cast<double>(k) / static_cast<double>(n_));
    const cdouble twisted = w * odd;
    spectrum[k] = even + twisted;
    spectrum[k + n_] = even - twisted;
  }
  return spectrum;
}

RVector Pow2Plan::inverse_real(const CVector& spectrum) const {
  RFADE_EXPECTS(spectrum.size() == 2 * n_,
                "Pow2Plan::inverse_real: spectrum must have 2 * size() bins");
  // Undo the split recombination, inverse-transform the packed sequence,
  // and unpack even/odd samples.  The 1/N inner scaling makes the overall
  // operator the true inverse of transform_real (1/(2N) convention).
  CVector z(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const cdouble even = (spectrum[k] + spectrum[k + n_]) * 0.5;
    const cdouble w =
        std::polar(1.0, kPi * static_cast<double>(k) / static_cast<double>(n_));
    const cdouble odd = (spectrum[k] - spectrum[k + n_]) * 0.5 * w;
    z[k] = even + cdouble(0.0, 1.0) * odd;
  }
  transform(z, Direction::Inverse);
  const double scale = 1.0 / static_cast<double>(n_);
  RVector x(2 * n_);
  for (std::size_t j = 0; j < n_; ++j) {
    x[2 * j] = z[j].real() * scale;
    x[2 * j + 1] = z[j].imag() * scale;
  }
  return x;
}

// --- Pow2PlanF ---------------------------------------------------------------

Pow2PlanF::Pow2PlanF(std::size_t n) : n_(n) {
  RFADE_EXPECTS(is_power_of_two(n), "Pow2PlanF: size must be 2^k");
  RFADE_EXPECTS(n <= (std::size_t{1} << 32), "Pow2PlanF: size exceeds 2^32");
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i < j) {
      swaps_.push_back(static_cast<std::uint32_t>(i));
      swaps_.push_back(static_cast<std::uint32_t>(j));
    }
    std::size_t mask = n >> 1;
    while (j & mask) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
  if (n > 1) {
    // Twiddles from the double resync recurrence, narrowed once: every
    // float plan of a given length carries identical tables, so scalar
    // and batched float transforms (which both read these) agree.
    std::vector<cdouble> stage(n / 2);
    forward_twiddles_.resize(n - 1);
    inverse_twiddles_.resize(n - 1);
    std::size_t offset = 0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      fill_stage_twiddles(len, -1.0, stage.data());
      for (std::size_t k = 0; k < len / 2; ++k) {
        forward_twiddles_[offset + k] =
            cfloat(static_cast<float>(stage[k].real()),
                   static_cast<float>(stage[k].imag()));
      }
      fill_stage_twiddles(len, 1.0, stage.data());
      for (std::size_t k = 0; k < len / 2; ++k) {
        inverse_twiddles_[offset + k] =
            cfloat(static_cast<float>(stage[k].real()),
                   static_cast<float>(stage[k].imag()));
      }
      offset += len / 2;
    }
  }
}

void Pow2PlanF::transform(CVectorF& data, Direction direction) const {
  RFADE_EXPECTS(data.size() == n_, "Pow2PlanF: data size mismatch");
  if (n_ == 1) {
    return;
  }
  for (std::size_t s = 0; s + 1 < swaps_.size(); s += 2) {
    std::swap(data[swaps_[s]], data[swaps_[s + 1]]);
  }
  const std::vector<cfloat>& twiddles =
      direction == Direction::Forward ? forward_twiddles_ : inverse_twiddles_;
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const cfloat* w = twiddles.data() + offset;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cfloat even = data[start + k];
        const cfloat odd = data[start + k + len / 2] * w[k];
        data[start + k] = even + odd;
        data[start + k + len / 2] = even - odd;
      }
    }
    offset += len / 2;
  }
}

void Pow2PlanF::transform_batched(float* re, float* im, std::size_t batch,
                                  Direction direction) const {
  RFADE_EXPECTS(re != nullptr && im != nullptr,
                "Pow2PlanF::transform_batched: null data");
  if (n_ == 1 || batch == 0) {
    return;
  }
  for (std::size_t s = 0; s + 1 < swaps_.size(); s += 2) {
    const std::size_t i = std::size_t{swaps_[s]} * batch;
    const std::size_t j = std::size_t{swaps_[s + 1]} * batch;
    std::swap_ranges(re + i, re + i + batch, re + j);
    std::swap_ranges(im + i, im + i + batch, im + j);
  }
  const std::vector<cfloat>& twiddles =
      direction == Direction::Forward ? forward_twiddles_ : inverse_twiddles_;
  batched_butterfly_stages_f32(re, im, n_, batch, twiddles.data());
}

// --- RealConvolverF ----------------------------------------------------------

RealConvolverF::RealConvolverF(std::shared_ptr<const Pow2PlanF> plan,
                               CVectorF spectrum)
    : plan_(std::move(plan)), spectrum_(std::move(spectrum)) {
  RFADE_EXPECTS(plan_ != nullptr, "RealConvolverF: null plan");
  RFADE_EXPECTS(spectrum_.size() == plan_->size(),
                "RealConvolverF: spectrum size must match plan size");
}

void RealConvolverF::convolve_packed(const CVectorF& in,
                                     CVectorF& work) const {
  RFADE_EXPECTS(in.size() == plan_->size(),
                "RealConvolverF: input size must match plan size");
  work = in;
  plan_->transform(work, Direction::Forward);
  for (std::size_t k = 0; k < work.size(); ++k) {
    work[k] *= spectrum_[k];
  }
  plan_->transform(work, Direction::Inverse);
}

// --- BluesteinPlan -----------------------------------------------------------

BluesteinPlan::BluesteinPlan(std::size_t n)
    : n_(n), m_(next_pow2(n >= 1 ? 2 * n - 1 : 1)), inner_(m_) {
  RFADE_EXPECTS(n >= 1, "BluesteinPlan: size must be >= 1");
  forward_chirp_.resize(n);
  inverse_chirp_.resize(n);
  CVector forward_b(m_, cdouble{});
  CVector inverse_b(m_, cdouble{});
  // The chirp values and the conj-chirp convolution kernel replicate the
  // ad-hoc bluestein() arithmetic verbatim (j^2 reduced mod 2n, the same
  // std::polar calls), so the planned transform is bit-identical to it.
  for (std::size_t j = 0; j < n; ++j) {
    const unsigned long long j2 =
        (static_cast<unsigned long long>(j) * j) % (2ull * n);
    const double phase = kPi * static_cast<double>(j2) / static_cast<double>(n);
    forward_chirp_[j] = std::polar(1.0, -phase);
    inverse_chirp_[j] = std::polar(1.0, phase);
    const cdouble forward_inv = std::conj(forward_chirp_[j]);
    const cdouble inverse_inv = std::conj(inverse_chirp_[j]);
    forward_b[j] = forward_inv;
    inverse_b[j] = inverse_inv;
    if (j != 0) {
      forward_b[m_ - j] = forward_inv;
      inverse_b[m_ - j] = inverse_inv;
    }
  }
  inner_.transform(forward_b, Direction::Forward);
  inner_.transform(inverse_b, Direction::Forward);
  forward_kernel_ = std::move(forward_b);
  inverse_kernel_ = std::move(inverse_b);
}

void BluesteinPlan::transform(const CVector& in, CVector& out,
                              Direction direction, CVector& scratch) const {
  RFADE_EXPECTS(in.size() == n_, "BluesteinPlan: input size mismatch");
  const CVector& chirp =
      direction == Direction::Forward ? forward_chirp_ : inverse_chirp_;
  const CVector& kernel =
      direction == Direction::Forward ? forward_kernel_ : inverse_kernel_;
  scratch.assign(m_, cdouble{});
  for (std::size_t j = 0; j < n_; ++j) {
    scratch[j] = in[j] * chirp[j];
  }
  inner_.transform(scratch, Direction::Forward);
  for (std::size_t j = 0; j < m_; ++j) {
    scratch[j] *= kernel[j];
  }
  inner_.transform(scratch, Direction::Inverse);
  out.resize(n_);
  const double scale = 1.0 / static_cast<double>(m_);  // undo unnormalised IFFT
  for (std::size_t j = 0; j < n_; ++j) {
    out[j] = scratch[j] * scale * chirp[j];
  }
}

// --- RealConvolver -----------------------------------------------------------

RealConvolver::RealConvolver(std::shared_ptr<const Pow2Plan> plan,
                             const RVector& kernel)
    : plan_(std::move(plan)) {
  RFADE_EXPECTS(plan_ != nullptr, "RealConvolver: null plan");
  RFADE_EXPECTS(kernel.size() == plan_->size(),
                "RealConvolver: kernel size must match plan size");
  // Spectrum via the full complex transform of the zero-imaginary kernel:
  // bit-identical to fft::dft of the complexified kernel, so swapping the
  // convolver into a path that used to call fft::dft changes nothing.
  CVector complexified(kernel.size());
  for (std::size_t j = 0; j < kernel.size(); ++j) {
    complexified[j] = cdouble(kernel[j], 0.0);
  }
  plan_->transform(complexified, Direction::Forward);
  spectrum_ = std::move(complexified);
}

void RealConvolver::convolve_packed(const CVector& in, CVector& work) const {
  RFADE_EXPECTS(in.size() == plan_->size(),
                "RealConvolver: input size must match plan size");
  work = in;
  plan_->transform(work, Direction::Forward);
  for (std::size_t k = 0; k < work.size(); ++k) {
    work[k] *= spectrum_[k];
  }
  plan_->transform(work, Direction::Inverse);
}

void RealConvolver::convolve_pair(const double* x, const double* y,
                                  double* out_x, double* out_y,
                                  CVector& work) const {
  const std::size_t n = plan_->size();
  work.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    work[j] = cdouble(x[j], y[j]);
  }
  plan_->transform(work, Direction::Forward);
  for (std::size_t k = 0; k < n; ++k) {
    work[k] *= spectrum_[k];
  }
  plan_->transform(work, Direction::Inverse);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    out_x[j] = work[j].real() * scale;
    out_y[j] = work[j].imag() * scale;
  }
}

CVector naive_dft(const CVector& data, Direction direction) {
  const std::size_t n = data.size();
  const double sign = direction == Direction::Forward ? -1.0 : 1.0;
  CVector result(n, cdouble{});
  for (std::size_t k = 0; k < n; ++k) {
    cdouble acc{};
    for (std::size_t l = 0; l < n; ++l) {
      const double phase = sign * 2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(l) / static_cast<double>(n);
      acc += data[l] * std::polar(1.0, phase);
    }
    result[k] = acc;
  }
  return result;
}

}  // namespace rfade::fft
