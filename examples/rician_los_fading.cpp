// Correlated Rician (LOS) envelopes on the paper's coloring machinery: one
// shared ColoringPlan of the Sec. 6 spectral scenario feeds a whole
// K-factor sweep — only the LOS mean changes per scenario, the expensive
// build phase runs once.
//
//   build/examples/rician_los_fading [--samples 120000] [--seed 42]
//                                    [--phase 0.9]
//
// Per K the program validates measured envelope mean/variance against the
// exact Rician marginal (stats::RicianDistribution) and runs the KS test
// on the full distribution.  K = 0 is the paper's pure-Rayleigh baseline —
// bit-identical to running without the scenario layer at all.

#include <cstdio>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/scenario/scenario_spec.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 120000);
  const std::uint64_t seed = args.get_size("seed", 42);
  const double phase = args.get_double("phase", 0.9);

  // Diffuse correlation: the paper's Eq. (22) spectral scenario.  The plan
  // (PSD forcing + coloring) is built once and shared by every K below.
  const numeric::CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const auto plan = core::ColoringPlan::create(k);

  support::TablePrinter table(
      "Rician K-factor sweep on one shared plan (branch 1 shown)");
  table.set_header({"K", "E[r] theory", "E[r] measured", "mean err",
                    "var err", "worst KS p"});

  for (const double k_factor : {0.0, 0.5, 1.0, 4.0, 16.0}) {
    const scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::rician(k, k_factor, phase);
    core::ValidationOptions options;
    options.samples = samples;
    options.seed = seed;
    options.ks_samples_per_branch = 5000;
    const auto report = scenario::validate_scenario(spec, plan, options);
    const stats::RicianDistribution marginal = spec.branch_marginal(*plan, 0);

    table.add_row({support::fixed(k_factor, 1),
                   support::fixed(marginal.mean(), 4),
                   support::fixed(report.measured_mean[0], 4),
                   support::scientific(report.max_mean_rel_error),
                   support::scientific(report.max_variance_rel_error),
                   support::fixed(report.worst_ks_p_value, 4)});
  }
  table.print();

  std::printf(
      "\nLOS mean m_j = sqrt(K * K_bar_jj) e^{i phi} is added after "
      "coloring,\nso the diffuse cross-correlation is untouched and K = 0 "
      "reproduces the\npure-Rayleigh generator bit-for-bit.\n");
  return 0;
}
