// Suzuki composite fading: correlated lognormal shadowing multiplying the
// paper's correlated Rayleigh core (scenario/composite/).  The shadowing
// gain is a Gudmundson-correlated Gaussian-in-dB process on its own
// coloring plan and seekable Philox tape, threaded through the shared
// pipeline's GainSource hook — so the batched keyed blocks, the parallel
// stream, and the continuous FadingStream modes all shadow the same way.
//
//   build/examples/suzuki_shadowed_fading [--samples 60000] [--seed 7]
//       [--sigma-db 6.0] [--decorrelation 4.0] [--stride 32]
//       [--idft 512] [--blocks 4]
//
// Part 1 sweeps sigma_dB and validates envelope mean / second moment / KS
// against the exact lognormal-mixture marginal (stats::SuzukiDistribution).
// Part 2 runs the continuous stream mode on every backend and checks
// next_block() against the keyed generate_block() replay.

#include <cstdio>

#include "rfade/core/fading_stream.hpp"
#include "rfade/scenario/composite/suzuki.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using scenario::composite::ShadowingSpec;
using scenario::composite::SuzukiGenerator;

namespace {

numeric::CMatrix tridiagonal_covariance(std::size_t n) {
  numeric::CMatrix k = numeric::CMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    k(i, i + 1) = numeric::cdouble(0.4, 0.2);
    k(i + 1, i) = numeric::cdouble(0.4, -0.2);
  }
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 60000);
  const std::uint64_t seed = args.get_size("seed", 7);
  const double sigma_db = args.get_double("sigma-db", 6.0);
  const double decorrelation = args.get_double("decorrelation", 4.0);
  const std::size_t stride = args.get_size("stride", 32);
  const std::size_t idft = args.get_size("idft", 512);
  const std::size_t blocks = args.get_size("blocks", 4);

  const numeric::CMatrix k = tridiagonal_covariance(3);

  support::TablePrinter table(
      "Suzuki composite envelopes (branch 0; lognormal x Rayleigh)");
  table.set_header({"sigma_dB", "E[r] theory", "E[r] measured", "E[r^2] err",
                    "worst KS p"});
  for (const double sweep_sigma : {2.0, sigma_db, 10.0}) {
    ShadowingSpec shadowing;
    shadowing.sigma_db = sweep_sigma;
    shadowing.decorrelation_samples = decorrelation;
    shadowing.spacing = 1;
    const SuzukiGenerator generator(k, shadowing);
    core::ValidationOptions options;
    options.samples = samples;
    options.seed = seed;
    options.ks_samples_per_branch = 10000;
    options.chunk_size = 2048;
    const auto report =
        scenario::composite::validate_suzuki(generator, options, stride);
    const stats::SuzukiDistribution marginal = generator.branch_marginal(0);
    table.add_row({support::fixed(sweep_sigma, 1),
                   support::fixed(marginal.mean(), 4),
                   support::fixed(report.measured_mean[0], 4),
                   support::scientific(report.max_second_moment_rel_error),
                   support::fixed(report.worst_ks_p_value, 4)});
  }
  table.print();

  // Continuous mode: the same shadowing trajectory rides every temporal
  // backend; the stateful cursor equals the keyed pure-function path.
  ShadowingSpec shadowing;
  shadowing.sigma_db = sigma_db;
  shadowing.decorrelation_samples = 8.0 * static_cast<double>(idft);
  shadowing.spacing = 64;
  const SuzukiGenerator generator(k, shadowing);
  std::printf("\nContinuous Suzuki streams (M = %zu, %zu blocks):\n", idft,
              blocks);
  for (const doppler::StreamBackend backend :
       {doppler::StreamBackend::IndependentBlock,
        doppler::StreamBackend::WindowedOverlapAdd,
        doppler::StreamBackend::OverlapSaveFir}) {
    core::FadingStreamOptions options;
    options.backend = backend;
    options.idft_size = idft;
    options.seed = seed;
    core::FadingStream stream = generator.make_stream(options);
    double power = 0.0;
    bool keyed_matches = true;
    for (std::size_t b = 0; b < blocks; ++b) {
      const numeric::CMatrix z = stream.next_block();
      keyed_matches =
          keyed_matches && z == stream.generate_block(seed, b);
      for (std::size_t i = 0; i < z.size(); ++i) {
        power += std::norm(z.data()[i]);
      }
    }
    power /= static_cast<double>(blocks * stream.block_size() *
                                 stream.dimension());
    std::printf("  %-22s mean |z|^2 = %.3f   next_block == keyed: %s\n",
                doppler::stream_backend_name(backend), power,
                keyed_matches ? "yes" : "NO");
    if (!keyed_matches) {
      return 1;
    }
  }
  std::printf(
      "\nShadowing multiplies after coloring, so the diffuse covariance is\n"
      "untouched; E[|z|^2] is inflated by the lognormal second moment\n"
      "E[A^2] = e^{2 (sigma_dB ln10/20)^2} per branch.\n");
  return 0;
}
