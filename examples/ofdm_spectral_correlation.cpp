// OFDM scenario (paper Secs. 2 and 6, Fig. 4a): envelopes on neighbouring
// carriers are *spectrally* correlated through the channel's delay spread
// and the arrival-time differences.  This example builds the paper's exact
// GSM-900 configuration, prints the covariance matrix (Eq. 22), generates a
// real-time faded trace, and dumps it to CSV for plotting.
//
//   build/examples/ofdm_spectral_correlation [--spacing-khz 200]
//       [--delay-spread-us 1] [--doppler-hz 50] [--csv ofdm_trace.csv]

#include <cmath>
#include <cstdio>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const double spacing_khz = args.get_double("spacing-khz", 200.0);
  const double delay_spread_us = args.get_double("delay-spread-us", 1.0);
  const double doppler_hz = args.get_double("doppler-hz", 50.0);
  const std::string csv_path = args.get("csv", "ofdm_trace.csv");

  channel::SpectralScenario scenario = channel::paper_spectral_scenario();
  const double f1 = scenario.carrier_hz[0];
  scenario.carrier_hz = {f1, f1 - spacing_khz * 1e3, f1 - 2 * spacing_khz * 1e3};
  scenario.rms_delay_spread_s = delay_spread_us * 1e-6;
  scenario.max_doppler_hz = doppler_hz;

  const numeric::CMatrix k = channel::spectral_covariance_matrix(scenario);
  support::TablePrinter cov("spectral covariance matrix K (cf. Eq. 22)");
  cov.set_header({"", "carrier 1", "carrier 2", "carrier 3"});
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<std::string> row = {"carrier " + std::to_string(i + 1)};
    for (std::size_t j = 0; j < 3; ++j) {
      row.push_back(support::CsvWriter::format(k(i, j), 4));
    }
    cov.add_row(row);
  }
  cov.print();

  // Real-time generation with the paper's Doppler parameters.
  core::RealTimeOptions options;
  options.idft_size = 4096;
  options.normalized_doppler = doppler_hz / 1000.0;  // Fs = 1 kHz
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator generator(k, options);
  random::Rng rng(0x0FD);
  const numeric::RMatrix envelopes = generator.generate_envelope_block(rng);

  support::CsvWriter csv(csv_path);
  csv.write_row({"sample", "carrier1", "carrier2", "carrier3"});
  for (std::size_t l = 0; l < envelopes.rows(); ++l) {
    csv.write_numeric_row({double(l), envelopes(l, 0), envelopes(l, 1),
                           envelopes(l, 2)});
  }

  // Fade statistics per carrier.
  support::TablePrinter fades("per-carrier fade statistics (Fs = 1 kHz)");
  fades.set_header({"carrier", "RMS", "LCR@-3dB [1/s]", "AFD@-3dB [ms]",
                    "theory LCR", "theory AFD"});
  const double rho = std::pow(10.0, -3.0 / 20.0);
  for (std::size_t j = 0; j < 3; ++j) {
    numeric::RVector series(envelopes.rows());
    for (std::size_t l = 0; l < envelopes.rows(); ++l) {
      series[l] = envelopes(l, j);
    }
    const double rms_value = stats::rms(series);
    const auto metrics =
        stats::measure_fading_metrics(series, rho * rms_value, 1000.0);
    fades.add_row(
        {std::to_string(j + 1), support::fixed(rms_value, 3),
         support::fixed(metrics.level_crossing_rate, 1),
         support::fixed(metrics.average_fade_duration * 1e3, 2),
         support::fixed(stats::theoretical_lcr(rho, doppler_hz), 1),
         support::fixed(stats::theoretical_afd(rho, doppler_hz) * 1e3, 2)});
  }
  std::printf("\n");
  fades.print();
  std::printf("\nwrote %zu faded samples per carrier to %s\n",
              envelopes.rows(), csv_path.c_str());
  return 0;
}
