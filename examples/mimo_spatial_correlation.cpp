// MIMO scenario (paper Secs. 3 and 6, Fig. 4b): transmit antennas in a
// uniform linear array see *spatially* correlated fading governed by the
// element spacing D/lambda, the angular spread Delta and the mean arrival
// angle Phi (Salz-Winters series, Eqs. 5-7).  This example reproduces the
// paper's three-antenna configuration and then sweeps the geometry to show
// how correlation — and with it, effective MIMO rank — changes.
//
//   build/examples/mimo_spatial_correlation [--antennas 3]
//       [--spacing 1.0] [--spread-deg 10] [--angle-deg 0]

#include <cmath>
#include <cstdio>

#include "rfade/channel/spatial.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/numeric/eigen_hermitian.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

namespace {

/// Effective degrees of freedom of the array: (sum lambda)^2 / sum lambda^2.
double effective_rank(const numeric::CMatrix& k) {
  const auto eig = numeric::eigen_hermitian(k);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double lambda : eig.values) {
    sum += lambda;
    sum_sq += lambda * lambda;
  }
  return sum * sum / sum_sq;
}

}  // namespace

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  channel::SpatialScenario scenario = channel::paper_spatial_scenario();
  scenario.antenna_count = args.get_size("antennas", 3);
  scenario.spacing_wavelengths = args.get_double("spacing", 1.0);
  scenario.angle_spread_rad =
      args.get_double("spread-deg", 10.0) * M_PI / 180.0;
  scenario.mean_angle_rad = args.get_double("angle-deg", 0.0) * M_PI / 180.0;

  const numeric::CMatrix k = channel::spatial_covariance_matrix(scenario);
  const std::size_t n = scenario.antenna_count;

  support::TablePrinter cov("spatial covariance matrix K (cf. Eq. 23)");
  std::vector<std::string> header = {""};
  for (std::size_t j = 0; j < n; ++j) {
    header.push_back("ant " + std::to_string(j + 1));
  }
  cov.set_header(header);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row = {"ant " + std::to_string(i + 1)};
    for (std::size_t j = 0; j < n; ++j) {
      row.push_back(support::CsvWriter::format(k(i, j), 4));
    }
    cov.add_row(row);
  }
  cov.print();
  std::printf("\neffective rank of K: %.2f of %zu\n", effective_rank(k), n);

  // Correlated envelope draws + measured envelope correlation.
  const core::EnvelopeGenerator generator(k);
  random::Rng rng(0x3130);
  const std::size_t draws = 50000;
  std::vector<numeric::RVector> envelopes(n, numeric::RVector(draws));
  for (std::size_t t = 0; t < draws; ++t) {
    const auto r = generator.sample_envelopes(rng);
    for (std::size_t j = 0; j < n; ++j) {
      envelopes[j][t] = r[j];
    }
  }
  support::TablePrinter corr("measured envelope correlation (50k draws)");
  corr.set_header({"pair", "pearson rho", "|K_kj|"});
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      corr.add_row({std::to_string(a + 1) + "-" + std::to_string(b + 1),
                    support::fixed(
                        stats::pearson_correlation(envelopes[a], envelopes[b]),
                        3),
                    support::fixed(std::abs(k(a, b)), 3)});
    }
  }
  std::printf("\n");
  corr.print();

  // Geometry sweep: what decorrelates an array fastest?
  support::TablePrinter sweep(
      "geometry sweep: adjacent correlation and effective rank");
  sweep.set_header({"D/lambda", "spread", "|K(1,2)|", "eff. rank"});
  for (const double spacing : {0.25, 0.5, 1.0, 2.0}) {
    for (const double spread_deg : {5.0, 10.0, 30.0, 90.0}) {
      channel::SpatialScenario s = scenario;
      s.spacing_wavelengths = spacing;
      s.angle_spread_rad = spread_deg * M_PI / 180.0;
      const auto ks = channel::spatial_covariance_matrix(s);
      sweep.add_row({support::fixed(spacing, 2),
                     support::fixed(spread_deg, 0) + " deg",
                     support::fixed(std::abs(ks(0, 1)), 3),
                     support::fixed(effective_rank(ks), 2)});
    }
  }
  std::printf("\n");
  sweep.print();
  std::printf("\nwider spacing and wider angular spread both decorrelate the "
              "array,\nraising the effective rank toward %zu.\n", n);
  return 0;
}
