// TWDP (two-wave with diffuse power) fading — Maric & Njemcevic's model
// on the paper's correlated diffuse field: two specular waves per branch
// over the Eq. (22) spectral covariance, in both generation modes.
//
//   build/examples/twdp_fading [--samples 100000] [--k 4.0] [--seed 21]
//
// Instant mode draws uniformly-random wave phases per realisation and
// verifies the envelopes against the exact TWDP marginal (KS p-values);
// a Delta sweep shows the defining TWDP behaviour: for Delta -> 1 the
// two waves can cancel, so deep fades become *more* likely than Rayleigh
// even at high K.  Real-time mode gives each wave a deterministic
// Doppler trajectory through the MeanSource phasor pair.

#include <cmath>
#include <cstdio>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/scenario/timevarying/twdp.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 100000);
  const double k_factor = args.get_double("k", 4.0);
  const std::uint64_t seed = args.get_size("seed", 21);

  const numeric::CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  const auto plan = core::ColoringPlan::create(k);

  // Delta sweep at fixed K: marginal validation + deep-fade probability.
  support::TablePrinter sweep("TWDP Delta sweep at K = " +
                              std::to_string(k_factor));
  sweep.set_header({"Delta", "E[r] theory", "E[r] meas", "worst KS p",
                    "P[deep fade]", "vs Rayleigh"});
  for (const double delta : {0.0, 0.5, 0.9, 1.0}) {
    const scenario::TwdpSpec spec =
        scenario::TwdpSpec::uniform(k, k_factor, delta);
    const scenario::TwdpGenerator generator(plan, spec);

    core::ValidationOptions validation;
    validation.samples = samples;
    validation.seed = seed;
    validation.ks_samples_per_branch = 4000;
    const auto report = scenario::validate_twdp(generator, validation);

    // Deep fades on branch 1: envelope below 10% of its RMS.
    const auto marginal = spec.branch_marginal(*plan, 0);
    const double rms = std::sqrt(marginal.second_moment());
    const numeric::RMatrix envelopes =
        generator.sample_envelope_stream(samples, seed);
    std::size_t deep = 0;
    for (std::size_t t = 0; t < envelopes.rows(); ++t) {
      if (envelopes(t, 0) < 0.1 * rms) {
        ++deep;
      }
    }
    const double p_deep = double(deep) / double(envelopes.rows());
    // A Rayleigh branch with the same total power 2 sigma^2 (1 + K).
    const double p_rayleigh = 1.0 - std::exp(-0.01);
    sweep.add_row({support::fixed(delta, 2),
                   support::fixed(marginal.mean(), 4),
                   support::fixed(report.measured_mean[0], 4),
                   support::fixed(report.worst_ks_p_value, 3),
                   support::fixed(p_deep, 5),
                   support::fixed(p_deep / p_rayleigh, 2) + "x"});
  }
  sweep.print();
  std::printf(
      "\n(Delta -> 1 lets the two waves cancel: deep fades grow even though "
      "K = %.1f\n specular power would make a single-wave Rician channel "
      "nearly fade-free.)\n",
      k_factor);

  // Real-time mode: deterministic per-wave Doppler trajectories on top of
  // the Doppler-faded diffuse field.
  const scenario::TwdpSpec spec = scenario::TwdpSpec::uniform(k, k_factor, 0.9);
  core::RealTimeOptions realtime;
  realtime.idft_size = 2048;
  realtime.normalized_doppler = 0.05;
  realtime.los_mean = spec.realtime_mean(*plan, 0.04, -0.017);
  const core::RealTimeGenerator generator(plan, realtime);
  random::Rng rng(seed);
  const numeric::RMatrix trace = generator.generate_envelope_block(rng);
  double min_env = trace(0, 0);
  double max_env = trace(0, 0);
  double sum_sq = 0.0;
  for (std::size_t l = 0; l < trace.rows(); ++l) {
    min_env = std::min(min_env, trace(l, 0));
    max_env = std::max(max_env, trace(l, 0));
    sum_sq += trace(l, 0) * trace(l, 0);
  }
  const auto marginal = spec.branch_marginal(*plan, 0);
  std::printf(
      "\nreal-time TWDP block (M = %zu, fm = %.3f, wave Dopplers %.3f / "
      "%.3f):\n  branch-1 envelope RMS %.4f (theory %.4f), range [%.4f, "
      "%.4f]\n",
      generator.block_size(), realtime.normalized_doppler, 0.04, -0.017,
      std::sqrt(sum_sq / double(trace.rows())),
      std::sqrt(marginal.second_moment()), min_env, max_env);
  return 0;
}
