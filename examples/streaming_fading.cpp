// Continuous streaming (core::FadingStream): one unbounded correlated
// Doppler-faded realisation pulled block-by-block through each of the
// three temporal backends, with the autocorrelation measured *at the
// block seams* — the estimate every pair of which crosses a block
// boundary.  Independent IDFT blocks (the paper's Sec. 5 shape) lose all
// correlation there; the windowed overlap-add and overlap-save backends
// keep the J0(2 pi fm d) law running straight through.  Also
// demonstrates keyed block regeneration (seek/fan-out) being
// bit-identical to the sequential cursor.
//
//   build/examples/streaming_fading [--fm 0.05] [--idft 2048]
//       [--overlap 256] [--blocks 200] [--csv streaming_trace.csv]

#include <cmath>
#include <complex>
#include <cstdio>

#include "rfade/channel/spatial.hpp"
#include "rfade/core/fading_stream.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using numeric::cdouble;
using numeric::CVector;

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Branch-0 trace of `blocks` consecutive stream blocks.
CVector collect(core::FadingStream& stream, std::size_t blocks) {
  CVector trace;
  trace.reserve(blocks * stream.block_size());
  for (std::size_t b = 0; b < blocks; ++b) {
    const numeric::CMatrix block = stream.next_block();
    for (std::size_t l = 0; l < block.rows(); ++l) {
      trace.push_back(block(l, 0));
    }
  }
  return trace;
}

/// Normalised autocorrelation at lag d restricted to pairs that straddle
/// a block boundary (multiples of block_size).
double seam_acf(const CVector& y, std::size_t block_size, std::size_t d) {
  cdouble sum{};
  std::size_t pairs = 0;
  double power = 0.0;
  for (const cdouble& v : y) {
    power += std::norm(v);
  }
  power /= static_cast<double>(y.size());
  for (std::size_t boundary = block_size; boundary + d < y.size();
       boundary += block_size) {
    for (std::size_t t = boundary - (d < boundary ? d : boundary);
         t < boundary; ++t) {
      sum += y[t] * std::conj(y[t + d]);
      ++pairs;
    }
  }
  return sum.real() / (static_cast<double>(pairs) * power);
}

}  // namespace

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const double fm = args.get_double("fm", 0.05);
  const std::size_t idft = args.get_size("idft", 2048);
  const std::size_t overlap = args.get_size("overlap", idft / 8);
  const std::size_t blocks = args.get_size("blocks", 200);
  const std::string csv_path = args.get("csv", "streaming_trace.csv");

  const numeric::CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());

  const doppler::StreamBackend backends[] = {
      doppler::StreamBackend::IndependentBlock,
      doppler::StreamBackend::WindowedOverlapAdd,
      doppler::StreamBackend::OverlapSaveFir};

  std::printf("continuous streaming over %zu blocks, M = %zu, fm = %.3f "
              "(WOLA overlap %zu)\n\n",
              blocks, idft, fm, overlap);

  support::TablePrinter table(
      "autocorrelation at the block seams (every pair crosses a boundary)");
  table.set_header({"lag", "J0 target", "independent", "overlap-add",
                    "overlap-save"});

  std::vector<CVector> traces;
  std::vector<std::size_t> block_sizes;
  for (const doppler::StreamBackend backend : backends) {
    core::FadingStreamOptions options;
    options.backend = backend;
    options.idft_size = idft;
    options.normalized_doppler = fm;
    options.overlap =
        backend == doppler::StreamBackend::WindowedOverlapAdd ? overlap : 0;
    options.seed = 0x57AB;
    core::FadingStream stream(k, options);
    block_sizes.push_back(stream.block_size());
    traces.push_back(collect(stream, blocks));

    // Keyed regeneration (fan-out / seek) is bit-identical to the cursor.
    const numeric::CMatrix replay = stream.generate_block(0x57AB, 1);
    const CVector& trace = traces.back();
    const std::size_t bs = stream.block_size();
    bool identical = true;
    for (std::size_t l = 0; l < bs; ++l) {
      identical = identical && replay(l, 0) == trace[bs + l];
    }
    std::printf("%-22s block 1 keyed replay %s the streamed bits\n",
                doppler::stream_backend_name(backend),
                identical ? "matches" : "DIFFERS FROM");
  }

  std::printf("\n");
  for (const std::size_t d : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    const double j0 = special::bessel_j0(kTwoPi * fm * double(d));
    table.add_row({std::to_string(d), support::fixed(j0, 4),
                   support::fixed(seam_acf(traces[0], block_sizes[0], d), 4),
                   support::fixed(seam_acf(traces[1], block_sizes[1], d), 4),
                   support::fixed(seam_acf(traces[2], block_sizes[2], d), 4)});
  }
  table.print();
  std::printf("\nindependent blocks decorrelate at every seam; the "
              "overlap-add crossfade holds J0 for lags up to its overlap, "
              "and the overlap-save FIR stream is exactly stationary.\n");

  // A short two-block overlap-save excerpt around a seam for plotting.
  support::CsvWriter csv(csv_path);
  csv.write_row({"sample", "envelope_independent", "envelope_overlap_save"});
  const std::size_t seam = block_sizes[0];
  const std::size_t from = seam > 64 ? seam - 64 : 0;
  for (std::size_t l = from; l < seam + 64 && l < traces[0].size(); ++l) {
    csv.write_numeric_row({double(l), std::abs(traces[0][l]),
                           std::abs(traces[2][l])});
  }
  std::printf("wrote the seam excerpt to %s\n", csv_path.c_str());
  return 0;
}
