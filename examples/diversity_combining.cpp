// Application study: why correlated-envelope generation matters.
//
// Selection combining (SC) over N antenna branches picks the strongest
// envelope.  Its outage probability depends critically on branch
// *correlation* — assuming independence when branches are correlated
// overstates the diversity gain.  This example uses the paper's generator
// to quantify the gap on the Sec. 6 spatial scenario:
//   * outage of SC with the true (Eq. 23) correlation,
//   * outage of SC under the independence assumption,
//   * the analytic single-branch outage as an anchor.
//
//   build/examples/diversity_combining [--samples 300000]

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "rfade/channel/spatial.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/numeric/matrix_ops.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

namespace {

/// Empirical P[max_j r_j < threshold] under a given covariance, computed
/// over one deterministic batched envelope stream (thread-pool parallel,
/// bit-identical for any thread count).
double sc_outage(const numeric::RMatrix& envelopes, double threshold) {
  std::size_t outages = 0;
  for (std::size_t t = 0; t < envelopes.rows(); ++t) {
    double best = 0.0;
    for (std::size_t j = 0; j < envelopes.cols(); ++j) {
      best = std::max(best, envelopes(t, j));
    }
    if (best < threshold) {
      ++outages;
    }
  }
  return double(outages) / double(envelopes.rows());
}

}  // namespace

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 300000);

  // True spatial correlation (Eq. 23) vs independent branches.
  const numeric::CMatrix k_corr =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());
  const numeric::CMatrix k_indep = numeric::CMatrix::identity(3);
  const core::EnvelopeGenerator correlated(k_corr);
  const core::EnvelopeGenerator independent(k_indep);
  const numeric::RMatrix env_corr =
      correlated.pipeline().sample_envelope_stream(samples, 0xD100);
  const numeric::RMatrix env_indep =
      independent.pipeline().sample_envelope_stream(samples, 0xD101);

  support::TablePrinter table(
      "selection-combining outage: correlated (Eq. 23) vs independent");
  table.set_header({"threshold [dB rel RMS]", "1 branch (analytic)",
                    "SC correlated", "SC independent", "indep/corr"});
  for (const double db : {-20.0, -15.0, -10.0, -5.0, 0.0}) {
    const double threshold = std::pow(10.0, db / 20.0);  // RMS = sigma_g = 1
    // Single branch: P[r < t] = 1 - exp(-t^2) for sigma_g^2 = 1.
    const double single = 1.0 - std::exp(-threshold * threshold);
    const double corr = sc_outage(env_corr, threshold);
    const double indep = sc_outage(env_indep, threshold);
    table.add_row({support::fixed(db, 0), support::scientific(single),
                   support::scientific(corr), support::scientific(indep),
                   corr > 0 ? support::fixed(indep / corr, 3) : "n/a"});
  }
  table.print();

  std::printf(
      "\ncorrelation (|K_12| = 0.81) erodes the diversity gain: at deep\n"
      "thresholds the correlated outage sits well above the independent\n"
      "prediction — exactly the effect accurate correlated-envelope\n"
      "generation exists to capture.\n");
  return 0;
}
