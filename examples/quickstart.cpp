// Quickstart: generate three correlated Rayleigh fading envelopes with the
// paper's algorithm in ~30 lines of user code.
//
//   build/examples/quickstart [--samples 100000] [--seed 42]
//
// Steps (paper Sec. 4.4):
//   1. describe the desired covariance matrix K of the complex Gaussians,
//   2. build the ColoringPlan once (PSD forcing + eigen-coloring, steps
//      1-5) and hand it to an EnvelopeGenerator — the same plan can feed
//      any number of generators and pipelines,
//   3. draw samples; the moduli are the correlated Rayleigh envelopes.
//      Per-draw calls suit callbacks; the batched sample_stream path is
//      the thread-pool throughput route.

#include <cstdio>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/validation.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 100000);
  const std::uint64_t seed = args.get_size("seed", 42);

  // 1. Desired covariance: unit powers, moderate complex cross-correlation.
  core::CovarianceBuilder builder(3);
  builder.set_gaussian_power(0, 1.0)
      .set_gaussian_power(1, 1.0)
      .set_gaussian_power(2, 1.0);
  builder.set_cross_entry(0, 1, {0.5, 0.3});
  builder.set_cross_entry(1, 2, {0.4, -0.2});
  builder.set_cross_entry(0, 2, {0.1, 0.1});
  const numeric::CMatrix k = builder.build();

  // 2. Build the coloring plan once; share it with the generator.  (The
  // one-argument EnvelopeGenerator(k) constructor does this internally —
  // building the plan explicitly lets many generators reuse it.)
  const auto plan = core::ColoringPlan::create(k);
  const core::EnvelopeGenerator generator(plan);

  // 3. A few draws.
  random::Rng rng(seed);
  support::TablePrinter draws("first five correlated envelope draws");
  draws.set_header({"draw", "r1", "r2", "r3"});
  for (int t = 0; t < 5; ++t) {
    const auto r = generator.sample_envelopes(rng);
    draws.add_row({std::to_string(t), support::fixed(r[0], 4),
                   support::fixed(r[1], 4), support::fixed(r[2], 4)});
  }
  draws.print();

  // Verify the statistics match the request (paper Sec. 4.5).
  const auto report = core::validate_generator(
      generator, {.samples = samples, .seed = seed, .parallel = true,
                  .chunk_size = 8192, .ks_samples_per_branch = 20000});
  std::printf("\nvalidation over %zu samples:\n", report.samples);
  std::printf("  covariance rel. error : %.4f\n", report.covariance_rel_error);
  std::printf("  worst Rayleigh KS p   : %.4f\n", report.worst_ks_p_value);
  std::printf("  envelope mean errors  : %.4f %.4f %.4f\n",
              report.envelope_mean_rel_error[0],
              report.envelope_mean_rel_error[1],
              report.envelope_mean_rel_error[2]);

  // Throughput route: the same statistics drawn as one batched stream,
  // fanned over the thread pool with per-block Philox substreams
  // (bit-identical result for any thread count).
  const numeric::CMatrix burst = generator.sample_stream(samples, seed + 1);
  std::printf("\nsample_stream drew %zu x %zu correlated Gaussians "
              "block-parallel\n",
              burst.rows(), burst.cols());
  return 0;
}
