// The serving layer end to end: declarative ChannelSpec scenarios
// compiled once through the PlanCache, fanned out to many tenant
// Sessions (tenant = spec + seed + cursor), pulled through the batcher,
// and validated with shard-mergeable exact accumulators.
//
//   build/examples/channel_service [--tenants 8] [--blocks 6]
//       [--idft 1024]
//
// What to look for in the output:
//   * the cache stats: one miss per distinct scenario, everything else
//     hits — a thousand tenants of one scenario cost one compile;
//   * the batched pull equals the sequential walk bit-for-bit;
//   * the two-shard moment merge equals the single-run answer exactly
//     (EXACT/match), not just to within a tolerance.

#include <cstdio>
#include <vector>

#include "rfade/channel/spectral.hpp"
#include "rfade/service/accumulators.hpp"
#include "rfade/service/channel_service.hpp"
#include "rfade/support/cli.hpp"

using namespace rfade;
using service::ChannelSpec;
using service::ChannelService;
using service::Session;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t tenants = args.get_size("tenants", 8);
  const std::size_t blocks = args.get_size("blocks", 6);
  const std::size_t idft = args.get_size("idft", 1024);

  const numeric::CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());

  // Two scenarios, declaratively.  Everything downstream is keyed on
  // these values — no hand-assembled plan/options plumbing.
  const ChannelSpec rayleigh = ChannelSpec::Builder()
                                   .rayleigh(k)
                                   .backend(doppler::StreamBackend::OverlapSaveFir)
                                   .idft_size(idft)
                                   .doppler(0.05)
                                   .build();
  const ChannelSpec rician =
      ChannelSpec::Builder().rician(k, 4.0).instant().block_size(256).build();

  ChannelService service;

  // Tenants alternate between the two scenarios; the cache compiles each
  // scenario exactly once no matter how many tenants arrive.
  std::vector<Session> sessions;
  sessions.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    sessions.push_back(
        service.open_session(t % 2 == 0 ? rayleigh : rician, 1000 + t));
  }
  const auto stats = service.cache_stats();
  std::printf("plan cache: %llu hits, %llu misses (hit ratio %.2f), %zu/%zu "
              "resident\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              stats.hit_ratio(), stats.size, stats.capacity);

  // Batched pulls: all tenants advance one block per sweep.
  std::vector<Session*> pointers;
  pointers.reserve(tenants);
  for (Session& session : sessions) {
    pointers.push_back(&session);
  }
  service::EnvelopeMomentAccumulator moments(k.rows());
  for (std::size_t round = 0; round < blocks; ++round) {
    const auto pulled = ChannelService::pull_blocks(pointers);
    moments.accumulate(pulled[0]);  // tenant 0's Rayleigh timeline
  }
  std::printf("served %zu tenants x %zu blocks (%zu rows each for tenant 0)\n",
              tenants, blocks, sessions[0].block_size());

  // Keyed regeneration: block 2 of tenant 0, reproduced independently of
  // the cursor walk above.
  const bool keyed_matches =
      sessions[0].generate_block(2) == sessions[0].generate_block(2);
  std::printf("keyed block regeneration deterministic: %s\n",
              keyed_matches ? "yes" : "NO");

  // Sharded validation: two shards of tenant 0's block range, merged,
  // against the single-run accumulator — equal to the bit.
  service::EnvelopeMomentAccumulator shard_a(k.rows());
  service::EnvelopeMomentAccumulator shard_b(k.rows());
  for (std::size_t b = 0; b < blocks; ++b) {
    (b < blocks / 2 ? shard_a : shard_b)
        .accumulate(sessions[0].generate_block(b));
  }
  shard_a.merge(shard_b);
  const auto merged = shard_a.finalize(0);
  const auto single = moments.finalize(0);
  const bool exact = merged.mean == single.mean &&
                     merged.second_moment == single.second_moment &&
                     merged.fourth_moment == single.fourth_moment;
  std::printf("two-shard merge vs single run: %s  (branch 0: E[r]=%.6f, "
              "E[r^2]=%.6f, AF=%.4f)\n",
              exact ? "EXACT match" : "MISMATCH", merged.mean,
              merged.second_moment, merged.amount_of_fading);
  return exact && keyed_matches ? 0 : 1;
}
