// Unequal-power envelopes — the generalisation the paper's abstract leads
// with: "an arbitrary number of Rayleigh envelopes with any desired, equal
// or unequal power".  The user specifies *envelope* variances sigma_r^2;
// step 1 of the algorithm (Eq. 11) converts them to the Gaussian powers
// sigma_g^2 = sigma_r^2 / (1 - pi/4), and the output is verified to carry
// exactly the requested envelope statistics.
//
//   build/examples/unequal_power_envelopes [--samples 200000]

#include <cmath>
#include <cstdio>

#include "rfade/core/covariance_spec.hpp"
#include "rfade/core/generator.hpp"
#include "rfade/core/power.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 200000);

  // Desired *envelope* variances: a strong, a medium, a weak branch
  // (e.g. main path, first echo, deep echo).
  const numeric::RVector envelope_powers = {1.0, 0.25, 0.04};

  core::CovarianceBuilder builder(3);
  for (std::size_t j = 0; j < 3; ++j) {
    builder.set_envelope_power(j, envelope_powers[j]);  // Eq. (11) inside
  }
  // Moderate correlation scaled to the branch magnitudes.
  const double g0 = core::gaussian_power_from_envelope_power(1.0);
  const double g1 = core::gaussian_power_from_envelope_power(0.25);
  const double g2 = core::gaussian_power_from_envelope_power(0.04);
  builder.set_cross_entry(0, 1, {0.5 * std::sqrt(g0 * g1), 0.2});
  builder.set_cross_entry(1, 2, {0.4 * std::sqrt(g1 * g2), -0.1});
  builder.set_cross_entry(0, 2, {0.1 * std::sqrt(g0 * g2), 0.0});
  const numeric::CMatrix k = builder.build();

  const core::EnvelopeGenerator generator(k);

  // Batched + thread-pool path: one deterministic envelope stream instead
  // of a per-draw loop (bit-identical for any thread count).
  const numeric::RMatrix envelopes =
      generator.pipeline().sample_envelope_stream(samples, 0x0E0);
  std::vector<stats::RunningStats> env(3);
  for (std::size_t t = 0; t < envelopes.rows(); ++t) {
    for (std::size_t j = 0; j < 3; ++j) {
      env[j].add(envelopes(t, j));
    }
  }

  support::TablePrinter table(
      "unequal-power envelopes: requested vs measured (Eqs. 11/14/15)");
  table.set_header({"branch", "requested Var{r}", "measured Var{r}",
                    "requested E{r}", "measured E{r}", "sigma_g^2 (Eq.11)"});
  for (std::size_t j = 0; j < 3; ++j) {
    const double gaussian_power =
        core::gaussian_power_from_envelope_power(envelope_powers[j]);
    const double expected_mean =
        core::envelope_mean_from_gaussian_power(gaussian_power);
    table.add_row({std::to_string(j + 1),
                   support::fixed(envelope_powers[j], 4),
                   support::fixed(env[j].variance(), 4),
                   support::fixed(expected_mean, 4),
                   support::fixed(env[j].mean(), 4),
                   support::fixed(gaussian_power, 4)});
  }
  table.print();

  std::printf("\nno conventional method covers this case: [1][2][3][4][6]\n"
              "require equal powers, and [5] forces the covariances real.\n");
  return 0;
}
