// The telemetry subsystem end to end: turn on runtime recording and
// tracing, push a multi-tenant serving workload plus a raw streaming
// workload through the instrumented hot paths, then export everything
// three ways — Prometheus text exposition, a JSON snapshot with
// histogram quantiles, and a Chrome trace (load it at ui.perfetto.dev
// or chrome://tracing).
//
//   build/examples/telemetry_dashboard [--tenants 6] [--blocks 8]
//       [--idft 1024] [--prom FILE] [--json FILE] [--trace FILE]
//
// Without file arguments the Prometheus and JSON exports print to
// stdout and the trace is kept in memory only.  What to look for:
//   * rfade_plan_cache_*_total: one miss per distinct scenario, the
//     rest hits (counters are per cache instance, labelled cache="N");
//   * rfade_session_next_block_ns / rfade_stream_block_fill_ns: block
//     latency distributions with p50/p90/p99 in the JSON export, the
//     stream histograms labelled by backend;
//   * the trace: Session::next_block spans nested under the batcher's
//     ChannelService::pull_blocks sweeps, one row per thread;
//   * rfade_metrics_*: tenant 0 runs with a link-level MetricsTap, so
//     its LCR/AFD, complex-ACF, and mutual-information gauges export
//     alongside rfade_metrics_drift (deviation from the Rice / J0 /
//     Wang-Abdi analytic references) and the 0/1 rfade_metrics_healthy
//     gate — the same numbers the panel below prints.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "rfade/channel/spectral.hpp"
#include "rfade/core/fading_stream.hpp"
#include "rfade/metrics/tap.hpp"
#include "rfade/service/channel_service.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/telemetry/telemetry.hpp"

using namespace rfade;
using service::ChannelSpec;
using service::ChannelService;
using service::Session;

namespace {

bool write_or_print(const std::string& path, const std::string& payload,
                    const char* banner) {
  if (path.empty()) {
    std::printf("--- %s ---\n%s\n", banner, payload.c_str());
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << payload;
  std::printf("%s -> %s (%zu bytes)\n", banner, path.c_str(), payload.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t tenants = args.get_size("tenants", 6);
  const std::size_t blocks = args.get_size("blocks", 8);
  const std::size_t idft = args.get_size("idft", 1024);
  const std::string prom_path = args.get("prom", "");
  const std::string json_path = args.get("json", "");
  const std::string trace_path = args.get("trace", "");

  if (!telemetry::kCompiledIn) {
    std::printf("telemetry compiled out (RFADE_TELEMETRY=0); nothing to "
                "show\n");
    return 0;
  }
  telemetry::set_enabled(true);
  telemetry::Tracer::global().set_enabled(true);

  const numeric::CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());

  // Two scenarios through the serving layer: continuous overlap-save
  // streams and instant Rician blocks, tenants alternating.
  const ChannelSpec rayleigh = ChannelSpec::Builder()
                                   .rayleigh(k)
                                   .backend(doppler::StreamBackend::OverlapSaveFir)
                                   .idft_size(idft)
                                   .doppler(0.05)
                                   .build();
  const ChannelSpec rician =
      ChannelSpec::Builder().rician(k, 4.0).instant().block_size(256).build();

  ChannelService service;
  std::vector<Session> sessions;
  sessions.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    sessions.push_back(
        service.open_session(t % 2 == 0 ? rayleigh : rician, 2000 + t));
  }
  std::vector<Session*> pointers;
  pointers.reserve(tenants);
  for (Session& session : sessions) {
    pointers.push_back(&session);
  }
  for (std::size_t round = 0; round < blocks; ++round) {
    const auto pulled = ChannelService::pull_blocks(pointers);
    (void)pulled;
  }
  sessions[0].seek(0);  // rewind: shows up in rfade_session_seeks_total
  // Link-level metrics on tenant 0: every cursor pull below streams into
  // the LCR/ACF/MI accumulators, published as rfade_metrics_* gauges
  // with drift against the Rice/J0/Wang-Abdi references.
  metrics::MetricsTapConfig tap_config;
  tap_config.session = "tenant-0";
  const auto tap = sessions[0].enable_metrics(tap_config);
  const std::size_t metrics_blocks =
      args.get_size("metrics-blocks", blocks < 48 ? 48 : blocks);
  for (std::size_t b = 0; b < metrics_blocks; ++b) {
    // The per-session cursor path, so rfade_session_next_block_ns fills
    // alongside the batcher's rfade_batcher_sweep_width.
    (void)sessions[0].next_block();
  }
  tap->publish();

  // A raw stream alongside, so two backend labels appear on
  // rfade_stream_block_fill_ns.
  core::FadingStreamOptions stream_options;
  stream_options.idft_size = idft;
  stream_options.normalized_doppler = 0.05;
  stream_options.seed = 0xDA5B;
  core::FadingStream stream(k, stream_options);
  for (std::size_t b = 0; b < blocks; ++b) {
    (void)stream.next_block();
  }

  telemetry::Tracer::global().set_enabled(false);
  telemetry::set_enabled(false);

  const auto stats = service.cache_stats();
  std::printf("served %zu tenants x %zu blocks; plan cache %llu hits / %llu "
              "misses\n",
              tenants, blocks, static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  std::printf("trace: %zu spans captured, %llu dropped\n",
              telemetry::Tracer::global().events().size(),
              static_cast<unsigned long long>(
                  telemetry::Tracer::global().dropped()));

  // The metrics panel: every analytic gate of tenant 0's tap, measured
  // against its spec-derived reference.
  std::printf("--- link-level metrics (tenant 0, %llu samples) ---\n",
              static_cast<unsigned long long>(tap->samples_observed()));
  std::printf("  %-10s %-6s %-9s %12s %12s %8s  %s\n", "metric", "branch",
              "param", "measured", "expected", "drift", "gate");
  for (const auto& report : tap->health()) {
    std::printf("  %-10s %-6zu %-9g %12.6f %12.6f %7.1f%%  %s\n",
                report.metric.c_str(), report.branch, report.parameter,
                report.measured, report.expected, 100.0 * report.drift,
                report.ok ? "ok" : "DRIFTED");
  }
  std::printf("  health: %s\n", tap->healthy() ? "ok" : "DRIFTED");

  bool ok = true;
  ok &= write_or_print(prom_path, telemetry::prometheus_text(),
                       "prometheus exposition");
  ok &= write_or_print(json_path, telemetry::json_snapshot(), "json snapshot");
  if (!trace_path.empty()) {
    ok &= write_or_print(trace_path,
                         telemetry::Tracer::global().chrome_trace_json(),
                         "chrome trace");
  }

  // Sanity: the instrumented paths must actually have recorded.
  telemetry::Registry& registry = telemetry::Registry::global();
  const bool recorded =
      registry.histogram("rfade_session_next_block_ns")->count() >= blocks &&
      registry.histogram("rfade_batcher_sweep_width")->count() >= blocks &&
      registry.counter("rfade_session_seeks_total")->value() >= 1 &&
      registry
              .gauge("rfade_metrics_observed_samples",
                     telemetry::label("session", "tenant-0"))
              ->value() > 0 &&
      !telemetry::Tracer::global().events().empty();
  std::printf("instrumentation sanity: %s\n", recorded ? "ok" : "FAILED");
  return ok && recorded ? 0 : 1;
}
