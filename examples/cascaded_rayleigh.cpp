// Cascaded (double) Rayleigh envelopes — the mobile-to-mobile / keyhole
// product channel of Ibdah & Ding — from two correlated stages on shared
// ColoringPlans: stage 1 carries the paper's spectral covariance, stage 2
// an independent correlation profile, and each draw is the Hadamard
// product Z1 (.) Z2.
//
//   build/examples/cascaded_rayleigh [--samples 200000] [--seed 7]
//
// The closing tables verify the product-channel theory: E[r] =
// (pi/4) s1 s2, E[r^2] = s1^2 s2^2, amount of fading ~ 3 (vs 1 for plain
// Rayleigh — cascades fade much deeper), and the complex covariance of
// the product equals the Hadamard product of the stage covariances.

#include <cmath>
#include <cstdio>

#include "rfade/channel/spectral.hpp"
#include "rfade/numeric/matrix.hpp"
#include "rfade/scenario/cascaded.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using numeric::cdouble;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 200000);
  const std::uint64_t seed = args.get_size("seed", 7);

  // Stage 1: the paper's Eq. (22) spectral covariance.  Stage 2: a
  // different, unequal-power profile — the cascade composes any two specs.
  const numeric::CMatrix k1 =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());
  numeric::CMatrix k2 = numeric::CMatrix::identity(3);
  k2(0, 0) = 1.5;
  k2(2, 2) = 0.8;
  k2(0, 1) = cdouble(0.45, 0.15);
  k2(1, 0) = cdouble(0.45, -0.15);
  k2(1, 2) = cdouble(0.3, -0.1);
  k2(2, 1) = cdouble(0.3, 0.1);

  const scenario::CascadedRayleighGenerator gen(k1, k2);
  const auto report = gen.envelope_moment_diagnostics(samples, seed);

  support::TablePrinter moments(
      "cascaded envelope moments vs product-channel theory");
  moments.set_header({"branch", "E[r] theory", "E[r] meas", "E[r^2] theory",
                      "E[r^2] meas", "AF meas (theory 3)"});
  for (std::size_t j = 0; j < gen.dimension(); ++j) {
    moments.add_row({std::to_string(j + 1),
                     support::fixed(report.expected_mean[j], 4),
                     support::fixed(report.measured_mean[j], 4),
                     support::fixed(report.expected_second_moment[j], 4),
                     support::fixed(report.measured_second_moment[j], 4),
                     support::fixed(report.measured_amount_of_fading[j], 3)});
  }
  moments.print();

  std::printf(
      "\ncovariance check: ||K_hat - K1 (.) K2||_F / ||K1 (.) K2||_F = "
      "%.2e\n",
      report.covariance_rel_error);
  std::printf("max mean rel err = %.2e, max E[r^2] rel err = %.2e over %zu "
              "samples\n",
              report.max_mean_rel_error, report.max_second_moment_rel_error,
              report.samples);

  // Deep-fade comparison: the cascade's defining behaviour.  Count
  // envelope samples below 10%% of the RMS for branch 1 and compare with
  // the single-Rayleigh prediction P[r < t] = 1 - exp(-t^2/s^2) ~ 1e-2.
  const numeric::RMatrix envelopes = gen.sample_envelope_stream(samples, seed);
  const double rms = std::sqrt(gen.envelope_second_moment(0));
  const double threshold = 0.1 * rms;
  std::size_t deep = 0;
  for (std::size_t t = 0; t < envelopes.rows(); ++t) {
    if (envelopes(t, 0) < threshold) {
      ++deep;
    }
  }
  const double p_cascaded = static_cast<double>(deep) /
                            static_cast<double>(envelopes.rows());
  const double p_rayleigh = 1.0 - std::exp(-0.01);
  std::printf(
      "\ndeep fades below 0.1 RMS (branch 1): cascaded %.4f vs Rayleigh "
      "%.4f\n(cascaded channels spend ~%.1fx longer in deep fades)\n",
      p_cascaded, p_rayleigh, p_cascaded / p_rayleigh);
  return 0;
}
