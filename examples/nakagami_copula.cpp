// Correlated Nakagami-m / Weibull envelopes via the Gaussian copula over
// the paper's correlated complex-Gaussian core (scenario/composite/):
// each branch of the core is pushed through Phi -> inverse target CDF,
// and the caller's *envelope-domain* correlation target is pre-distorted
// through the Downton/Laguerre expansion so the realised Pearson
// correlation of the transformed envelopes matches the spec (Xu et al.,
// arXiv:2509.09411).
//
//   build/examples/nakagami_copula [--samples 120000] [--seed 11]
//                                  [--rho 0.6]
//
// The program prints the pre-distorted Gaussian power correlations, KS
// results for Nakagami m in {0.5, 1, 2.5, 4}, and the measured vs target
// envelope correlations.

#include <cmath>
#include <cstdio>
#include <vector>

#include "rfade/scenario/composite/copula.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;
using scenario::composite::CopulaMarginal;
using scenario::composite::CopulaMarginalTransform;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const std::size_t samples = args.get_size("samples", 120000);
  const std::uint64_t seed = args.get_size("seed", 11);
  const double rho = args.get_double("rho", 0.6);

  // Four branches, one per acceptance shape m, with a Weibull guest in a
  // second run below; neighbours share the envelope correlation target.
  const std::vector<double> shapes = {0.5, 1.0, 2.5, 4.0};
  numeric::RMatrix target(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    target(i, i) = 1.0;
  }
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    target(i, i + 1) = target(i + 1, i) = rho;
  }
  std::vector<CopulaMarginal> marginals;
  for (double m : shapes) {
    marginals.push_back(CopulaMarginal::nakagami(m, 1.0 + 0.5 * m));
  }
  const CopulaMarginalTransform transform(target, marginals);

  support::TablePrinter predistortion(
      "Pre-distortion: envelope target rho_env -> core power corr lambda");
  predistortion.set_header({"pair", "m_i / m_j", "rho_env", "lambda"});
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    char pair[16];
    char ms[32];
    std::snprintf(pair, sizeof(pair), "%zu-%zu", i, i + 1);
    std::snprintf(ms, sizeof(ms), "%.1f / %.1f", shapes[i], shapes[i + 1]);
    predistortion.add_row(
        {pair, ms, support::fixed(rho, 3),
         support::fixed(transform.predistorted_power_correlation(i, i + 1),
                        4)});
  }
  predistortion.print();

  core::ValidationOptions options;
  options.samples = samples;
  options.seed = seed;
  options.ks_samples_per_branch = 10000;
  const auto report = scenario::composite::validate_copula(transform, options);
  support::TablePrinter marginal_table("Nakagami-m marginals after the copula");
  marginal_table.set_header(
      {"m", "E[r] theory", "E[r] measured", "var err", "KS p"});
  for (std::size_t j = 0; j < 4; ++j) {
    marginal_table.add_row({support::fixed(shapes[j], 1),
                            support::fixed(transform.marginal(j).mean(), 4),
                            support::fixed(report.measured_mean[j], 4),
                            support::scientific(report.variance_rel_error[j]),
                            support::fixed(report.ks_p_values[j], 4)});
  }
  marginal_table.print();

  // Measured envelope correlation vs the spec and vs the post-PSD-forcing
  // prediction.  A chain of rho = 0.6 pairs over very different marginals
  // can demand a non-PSD Gaussian core; the plan layer then forces it
  // exactly as the paper forces K (Sec. 4.2), and
  // predicted_envelope_correlation() reports what the forced core
  // realises — the measured values must match *that*.
  const numeric::RMatrix predicted = transform.predicted_envelope_correlation();
  const numeric::RMatrix r = transform.sample_envelope_stream(samples, seed);
  std::vector<stats::RunningStats> branch_stats(4);
  for (std::size_t t = 0; t < r.rows(); ++t) {
    for (std::size_t j = 0; j < 4; ++j) {
      branch_stats[j].add(r(t, j));
    }
  }
  support::TablePrinter corr_table(
      "Realized envelope correlation (target vs post-forcing prediction)");
  corr_table.set_header({"pair", "target", "predicted", "measured"});
  bool ok = true;
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    double cross = 0.0;
    for (std::size_t t = 0; t < r.rows(); ++t) {
      cross += (r(t, i) - branch_stats[i].mean()) *
               (r(t, i + 1) - branch_stats[i + 1].mean());
    }
    const double measured =
        cross / (static_cast<double>(r.rows()) *
                 std::sqrt(branch_stats[i].variance() *
                           branch_stats[i + 1].variance()));
    ok = ok && std::abs(measured - predicted(i, i + 1)) < 0.03;
    char pair[16];
    std::snprintf(pair, sizeof(pair), "%zu-%zu", i, i + 1);
    corr_table.add_row({pair, support::fixed(rho, 3),
                        support::fixed(predicted(i, i + 1), 4),
                        support::fixed(measured, 4)});
  }
  corr_table.print();

  // Weibull guest pair: the same machinery with closed-form quantiles.
  numeric::RMatrix weibull_target(2, 2, 0.0);
  weibull_target(0, 0) = weibull_target(1, 1) = 1.0;
  weibull_target(0, 1) = weibull_target(1, 0) = rho;
  const CopulaMarginalTransform weibull(
      weibull_target,
      {CopulaMarginal::weibull(1.5, 1.0), CopulaMarginal::weibull(3.0, 2.0)});
  const auto weibull_report =
      scenario::composite::validate_copula(weibull, options);
  std::printf("\nWeibull pair (k = 1.5, 3.0): worst KS p = %.4f, max mean "
              "err = %.2e\n",
              weibull_report.worst_ks_p_value,
              weibull_report.max_mean_rel_error);

  if (!ok || report.worst_ks_p_value < 1e-4 ||
      weibull_report.worst_ks_p_value < 1e-4) {
    std::printf("FAILED: realized statistics drifted from the spec\n");
    return 1;
  }
  std::printf("\nAll marginals and correlations match the spec.\n");
  return 0;
}
