// Real-time Doppler fading (paper Sec. 5, Fig. 3): generates temporally
// correlated envelopes whose autocorrelation follows J0(2 pi fm d), and
// demonstrates why the Eq. (19) variance correction matters by running the
// same configuration with the correction disabled (the ref-[6] flaw).
//
//   build/examples/realtime_doppler_fading [--fm 0.05] [--idft 4096]
//       [--blocks 10] [--csv realtime_trace.csv]

#include <cmath>
#include <cstdio>

#include "rfade/channel/spatial.hpp"
#include "rfade/core/realtime.hpp"
#include "rfade/random/rng.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/fading_metrics.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/csv.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const double fm = args.get_double("fm", 0.05);
  const std::size_t idft = args.get_size("idft", 4096);
  const int blocks = static_cast<int>(args.get_size("blocks", 10));
  const std::string csv_path = args.get("csv", "realtime_trace.csv");

  const numeric::CMatrix k =
      channel::spatial_covariance_matrix(channel::paper_spatial_scenario());

  core::RealTimeOptions options;
  options.idft_size = idft;
  options.normalized_doppler = fm;
  options.input_variance_per_dim = 0.5;
  const core::RealTimeGenerator generator(k, options);

  std::printf("branch Doppler filter: M = %zu, fm = %.3f, km = %zu\n", idft,
              fm, generator.branch().filter().km);
  std::printf("post-filter variance (Eq. 19): sigma_g^2 = %.3e "
              "(input complex variance would be %.1f)\n",
              generator.branch_output_variance(),
              2.0 * options.input_variance_per_dim);

  // Measured autocorrelation vs J0 target.
  random::Rng rng(0xD0);
  const std::size_t max_lag = 50;
  numeric::RVector rho_avg(max_lag + 1, 0.0);
  numeric::RVector first_block_env;
  for (int b = 0; b < blocks; ++b) {
    const numeric::CMatrix block = generator.generate_block(rng);
    numeric::CVector series(block.rows());
    for (std::size_t l = 0; l < block.rows(); ++l) {
      series[l] = block(l, 0);
      if (b == 0) {
        first_block_env.push_back(std::abs(block(l, 0)));
      }
    }
    const auto rho = stats::normalized_autocorrelation(series, max_lag);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      rho_avg[d] += rho[d] / blocks;
    }
  }

  support::TablePrinter table("branch autocorrelation vs J0(2 pi fm d)");
  table.set_header({"lag", "measured", "J0 target"});
  for (std::size_t d = 0; d <= max_lag; d += 5) {
    table.add_row({std::to_string(d), support::fixed(rho_avg[d], 4),
                   support::fixed(
                       special::bessel_j0(2.0 * M_PI * fm * double(d)), 4)});
  }
  table.print();

  support::CsvWriter csv(csv_path);
  csv.write_row({"sample", "envelope1"});
  for (std::size_t l = 0; l < first_block_env.size(); ++l) {
    csv.write_numeric_row({double(l), first_block_env[l]});
  }
  std::printf("\nwrote one %zu-sample envelope trace to %s\n",
              first_block_env.size(), csv_path.c_str());

  // The flaw demo: same configuration, variance correction off.
  core::RealTimeOptions flawed = options;
  flawed.variance_handling = core::VarianceHandling::AssumeInputVariance;
  const core::RealTimeGenerator wrong(k, flawed);
  random::Rng rng2(0xD1);
  const numeric::RMatrix good_env = generator.generate_envelope_block(rng);
  const numeric::RMatrix bad_env = wrong.generate_envelope_block(rng2);
  numeric::RVector good_col(good_env.rows());
  numeric::RVector bad_col(bad_env.rows());
  for (std::size_t l = 0; l < good_env.rows(); ++l) {
    good_col[l] = good_env(l, 0);
    bad_col[l] = bad_env(l, 0);
  }
  std::printf("\nenvelope RMS, desired sqrt(K_11) = 1.000:\n");
  std::printf("  proposed (Eq. 19 correction) : %.4f\n", stats::rms(good_col));
  std::printf("  variance-unaware (ref. [6])  : %.6f  <- off by the filter "
              "gain\n",
              stats::rms(bad_col));
  return 0;
}
