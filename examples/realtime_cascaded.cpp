// Real-time cascaded Rayleigh fading — the mobile-to-mobile product
// channel (Ibdah & Ding) with both ends moving: two independently
// Doppler-faded stages multiplied per time instant.
//
//   build/examples/realtime_cascaded [--fm1 0.05] [--fm2 0.11]
//       [--idft 2048] [--blocks 30] [--seed 9]
//
// Verifies the product accounting: the cascaded branch autocorrelation
// follows rho1(d) rho2(d) — for equal-power stages the classical
// Akki-Haber J0(2 pi fm1 d) J0(2 pi fm2 d) shape — and the per-instant
// envelope marginal is the closed-form Bessel-K double-Rayleigh law.

#include <cmath>
#include <cstdio>

#include "rfade/channel/spectral.hpp"
#include "rfade/scenario/timevarying/cascaded_realtime.hpp"
#include "rfade/special/bessel.hpp"
#include "rfade/stats/autocorrelation.hpp"
#include "rfade/stats/ks_test.hpp"
#include "rfade/stats/moments.hpp"
#include "rfade/support/cli.hpp"
#include "rfade/support/table.hpp"

using namespace rfade;

int main(int argc, char** argv) {
  const support::ArgParser args(argc, argv);
  const double fm1 = args.get_double("fm1", 0.05);
  const double fm2 = args.get_double("fm2", 0.11);
  const std::size_t idft = args.get_size("idft", 2048);
  const int blocks = static_cast<int>(args.get_size("blocks", 30));
  const std::uint64_t seed = args.get_size("seed", 9);

  const numeric::CMatrix k =
      channel::spectral_covariance_matrix(channel::paper_spectral_scenario());

  scenario::CascadedRealTimeOptions options;
  options.idft_size = idft;
  options.first_doppler = fm1;
  options.second_doppler = fm2;
  const scenario::CascadedRealTimeGenerator generator(k, k, options);

  std::printf("cascaded real-time generator: N = %zu, M = %zu, stage "
              "Dopplers fm1 = %.3f, fm2 = %.3f\n",
              generator.dimension(), generator.block_size(), fm1, fm2);

  // Measured product autocorrelation vs rho1 rho2 (and the J0 J0 shape).
  const std::size_t max_lag = 50;
  numeric::CVector accumulated(max_lag + 1);
  stats::RunningStats envelope_stats;
  numeric::RVector thinned;
  const std::size_t stride = 48;
  for (int b = 0; b < blocks; ++b) {
    const numeric::CMatrix block =
        generator.generate_block(seed, static_cast<std::uint64_t>(b));
    numeric::CVector series(block.rows());
    for (std::size_t l = 0; l < block.rows(); ++l) {
      series[l] = block(l, 0);
      const double r = std::abs(block(l, 0));
      envelope_stats.add(r);
      if (l % stride == 0) {
        thinned.push_back(r);
      }
    }
    const numeric::CVector rho = stats::autocorrelation(
        series, max_lag, stats::AutocorrMode::Unbiased);
    for (std::size_t d = 0; d <= max_lag; ++d) {
      accumulated[d] += rho[d] / double(blocks);
    }
  }

  const numeric::RVector rho_product =
      generator.theoretical_normalized_autocorrelation(max_lag);
  const double power = generator.effective_covariance()(0, 0).real();
  support::TablePrinter table(
      "cascaded autocorrelation vs product of stage laws");
  table.set_header({"lag", "measured", "rho1*rho2", "J0*J0"});
  for (std::size_t d = 0; d <= max_lag; d += 5) {
    table.add_row(
        {std::to_string(d), support::fixed(accumulated[d].real() / power, 4),
         support::fixed(rho_product[d], 4),
         support::fixed(special::bessel_j0(2.0 * M_PI * fm1 * double(d)) *
                            special::bessel_j0(2.0 * M_PI * fm2 * double(d)),
                        4)});
  }
  table.print();

  // Per-instant marginal: the closed-form double-Rayleigh law.
  const auto marginal = generator.branch_marginal(0);
  const auto ks = stats::ks_test(
      thinned, [&marginal](double r) { return marginal.cdf(r); });
  std::printf(
      "\nenvelope marginal (branch 1): measured E[r] = %.4f vs theory %.4f, "
      "E[r^2] = %.4f vs %.4f\nKS vs double-Rayleigh CDF on %zu thinned "
      "samples: D = %.4f, p = %.3f\n",
      envelope_stats.mean(), marginal.mean(),
      envelope_stats.variance() +
          envelope_stats.mean() * envelope_stats.mean(),
      marginal.second_moment(), ks.n, ks.statistic, ks.p_value);

  // The cascade's deep-fade signature survives the Doppler shaping.
  const double rms = std::sqrt(marginal.second_moment());
  const double p_deep = marginal.cdf(0.1 * rms);
  std::printf(
      "\nP[r < 0.1 RMS] = %.4f analytically vs %.4f for single Rayleigh "
      "(%.1fx longer in deep fades)\n",
      p_deep, 1.0 - std::exp(-0.01), p_deep / (1.0 - std::exp(-0.01)));
  return 0;
}
